"""Per-compressor kernel inventories and throughput estimation.

The inventories encode the *structure* of each pipeline; the efficiency
constants are calibrated so the A100 numbers land at the magnitudes and
ratios §VII-C.4 reports (cuSZ-i ~60% of cuSZ compression throughput and
80-90% of its decompression on A100; closer on A40; cuSZx > cuSZp >
FZ-GPU/cuZFP > cuSZ > cuSZ-i in compression; Bitcomp adds negligible
overhead). Absolute numbers are model outputs, not measurements — the
shape is the reproduction target.

Structural distinctions doing the work:

* Lorenzo pipelines (cuSZ/cuSZp/cuSZx/FZ-GPU) are *streaming,
  bandwidth-bound*: their time scales with device bandwidth.
* G-Interp is a sequence of many small dependent spline stages with
  shared-memory staging and scattered halo loads: high arithmetic per
  element and per-stage synchronization, so on the A100 it is
  compute/latency-bound and does not enjoy the full 1555 GB/s — but on the
  A40 (half the bandwidth, *more* FP32) it loses little, which is exactly
  why the paper sees cuSZ-i closer to cuSZ on the A40.
* The extra GLE/Bitcomp pass reads only already-compressed bytes, hence
  "negligible overhead".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import Kernel, kernel_time

__all__ = ["PipelineTiming", "pipeline_kernels", "estimate_throughput",
           "QOZ_CPU_RATE"]

#: single-core CPU rate of QoZ (GB/s), as cited in the paper's §I
QOZ_CPU_RATE = 0.23


@dataclass
class PipelineTiming:
    """Modelled timing of one pipeline run."""

    codec: str
    direction: str
    device: str
    kernels: list[tuple[str, float]] = field(default_factory=list)
    total_seconds: float = 0.0
    input_bytes: int = 0

    @property
    def throughput_gbps(self) -> float:
        """End-to-end kernel throughput in GB/s of uncompressed data."""
        return self.input_bytes / self.total_seconds / 1e9


def _spline_predict(n: float) -> list[Kernel]:
    """G-Interp compression: prediction + error-control quantization +
    outlier compaction across 9 dependent stages. Arithmetic-heavy
    (spline weights, level-wise eb logic) with halo/scatter traffic, so
    compute-bound on the A100 and memory-bound on the A40."""
    return [Kernel(
        name="ginterp-predict-quant",
        bytes_read=5.0 * n, bytes_written=6.0 * n,
        flops=370.0 * n, mem_eff=0.29, flop_eff=0.5,
        launches=9,
    )]


def _spline_reconstruct(n: float) -> list[Kernel]:
    """G-Interp decompression: pure replay, no quantization/compaction —
    markedly lighter than the predict kernel."""
    return [Kernel(
        name="ginterp-reconstruct",
        bytes_read=6.0 * n, bytes_written=4.0 * n,
        flops=120.0 * n, mem_eff=0.55, flop_eff=0.5,
        launches=9,
    )]


def _huffman_encode(n: int, comp_bytes: int, topk: bool) -> list[Kernel]:
    # thread-private top-k caching (§VI-A) vs shared-memory atomics
    hist_eff = 0.35 if topk else 0.111
    return [
        Kernel(name="histogram", bytes_read=2.0 * n, bytes_written=8192,
               mem_eff=hist_eff),
        Kernel(name="huffman-encode", bytes_read=3.0 * n,
               bytes_written=float(comp_bytes), mem_eff=0.09),
    ]


def _huffman_decode(n: int, comp_bytes: int) -> list[Kernel]:
    return [Kernel(name="huffman-decode", bytes_read=float(comp_bytes),
                   bytes_written=2.0 * n, mem_eff=0.05)]


def _gle(comp_bytes: int) -> list[Kernel]:
    return [Kernel(name="gle-deredundancy", bytes_read=float(comp_bytes),
                   bytes_written=float(comp_bytes), mem_eff=0.6,
                   launches=2)]


def pipeline_kernels(codec: str, direction: str, n_elements: int,
                     compressed_bytes: int,
                     lossless: str = "none") -> list[Kernel]:
    """Kernel inventory for one (codec, direction) pipeline run.

    ``n_elements`` is the element count of the uncompressed field and
    ``compressed_bytes`` the measured archive size (from an actual
    compression run — the model consumes real ratios).
    """
    if direction not in ("compress", "decompress"):
        raise ConfigError(f"bad direction {direction!r}")
    n = float(n_elements)
    cb = compressed_bytes
    ks: list[Kernel] = []
    if codec == "cusz":
        if direction == "compress":
            ks += [Kernel(name="lorenzo-dualquant", bytes_read=4 * n,
                          bytes_written=2 * n, flops=12 * n, mem_eff=0.9)]
            ks += _huffman_encode(n_elements, cb, topk=False)
        else:
            ks += _huffman_decode(n_elements, cb)
            ks += [Kernel(name="lorenzo-scan", bytes_read=2 * n,
                          bytes_written=4 * n, flops=10 * n, mem_eff=0.85,
                          launches=3)]
    elif codec == "cuszi":
        if direction == "compress":
            ks += [Kernel(name="profile-autotune", bytes_read=0.02 * n,
                          bytes_written=1024, mem_eff=0.5)]
            ks += _spline_predict(n)
            ks += _huffman_encode(n_elements, cb, topk=True)
        else:
            ks += _huffman_decode(n_elements, cb)
            ks += _spline_reconstruct(n)
    elif codec == "cuszp":
        ks += [Kernel(name="cuszp-fused",
                      bytes_read=(4 * n if direction == "compress"
                                  else float(cb)),
                      bytes_written=(float(cb) if direction == "compress"
                                     else 4 * n),
                      flops=10 * n, mem_eff=0.25)]
    elif codec == "cuszx":
        ks += [Kernel(name="cuszx-monolithic",
                      bytes_read=(4 * n if direction == "compress"
                                  else float(cb)),
                      bytes_written=(float(cb) if direction == "compress"
                                     else 4 * n),
                      flops=6 * n, mem_eff=0.45)]
    elif codec == "fzgpu":
        if direction == "compress":
            ks += [Kernel(name="lorenzo-dualquant", bytes_read=4 * n,
                          bytes_written=2 * n, flops=12 * n, mem_eff=0.9),
                   Kernel(name="bitshuffle", bytes_read=2 * n,
                          bytes_written=2 * n, mem_eff=0.45),
                   Kernel(name="zeroblock-dedup", bytes_read=2 * n,
                          bytes_written=float(cb), mem_eff=0.85)]
        else:
            ks += [Kernel(name="zeroblock-restore", bytes_read=float(cb),
                          bytes_written=2 * n, mem_eff=0.85),
                   Kernel(name="bitunshuffle", bytes_read=2 * n,
                          bytes_written=2 * n, mem_eff=0.45),
                   Kernel(name="lorenzo-scan", bytes_read=2 * n,
                          bytes_written=4 * n, flops=10 * n, mem_eff=0.85,
                          launches=3)]
    elif codec == "cuzfp":
        ks += [Kernel(name="zfp-blocks",
                      bytes_read=(4 * n if direction == "compress"
                                  else float(cb)),
                      bytes_written=(float(cb) if direction == "compress"
                                     else 4 * n),
                      flops=60 * n, mem_eff=0.3)]
    else:
        raise ConfigError(f"no GPU pipeline model for codec {codec!r}")

    if lossless == "gle":
        ks += _gle(cb)
    elif lossless not in ("none",):
        raise ConfigError(f"no GPU model for lossless {lossless!r}")
    return ks


def estimate_throughput(codec: str, direction: str, n_elements: int,
                        compressed_bytes: int, device: DeviceSpec,
                        lossless: str = "none",
                        bytes_per_element: int = 4) -> PipelineTiming:
    """Model the pipeline's kernel time on ``device``."""
    kernels = pipeline_kernels(codec, direction, n_elements,
                               compressed_bytes, lossless)
    timing = PipelineTiming(codec=codec, direction=direction,
                            device=device.name,
                            input_bytes=n_elements * bytes_per_element)
    for k in kernels:
        t = kernel_time(k, device)
        timing.kernels.append((k.name, t))
        timing.total_seconds += t
    return timing
