"""Roofline kernel cost model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.gpu.device import DeviceSpec

__all__ = ["Kernel", "kernel_time"]


@dataclass(frozen=True)
class Kernel:
    """One GPU kernel launch in a compression pipeline.

    ``bytes_read`` / ``bytes_written`` are DRAM traffic; ``mem_eff``
    derates achievable bandwidth for access-pattern effects (1.0 =
    perfectly coalesced streaming, lower for strided gathers and atomics);
    ``flop_eff`` likewise for the FP pipeline; ``launches`` multiplies the
    fixed per-kernel overhead for multi-stage kernels that must globally
    synchronize between dependent stages (the spline levels of G-Interp).
    """

    name: str
    bytes_read: float
    bytes_written: float
    flops: float = 0.0
    mem_eff: float = 0.9
    flop_eff: float = 0.5
    launches: int = 1

    def __post_init__(self):
        if not 0 < self.mem_eff <= 1 or not 0 < self.flop_eff <= 1:
            raise ConfigError("efficiencies must be in (0, 1]")
        if self.bytes_read < 0 or self.bytes_written < 0 or self.flops < 0:
            raise ConfigError("kernel volumes must be non-negative")
        if self.launches < 1:
            raise ConfigError("launches must be >= 1")


def kernel_time(kernel: Kernel, device: DeviceSpec) -> float:
    """Kernel execution time in seconds under the roofline + overhead."""
    mem_t = (kernel.bytes_read + kernel.bytes_written) \
        / (device.mem_bw_bytes * kernel.mem_eff)
    flop_t = kernel.flops / (device.fp32_flops * kernel.flop_eff) \
        if kernel.flops else 0.0
    return max(mem_t, flop_t) + kernel.launches \
        * device.kernel_overhead_us * 1e-6
