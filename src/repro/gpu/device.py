"""Device specifications — the paper's Table I testbeds."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "A100_THETA", "A40_JLSE", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU model, with the characteristics the roofline model uses.

    ``mem_bw`` in GB/s, ``fp32_peak`` in TFLOPS, ``kernel_overhead_us`` the
    fixed per-kernel launch + synchronization cost in microseconds.
    """

    name: str
    testbed: str
    mem_bw: float
    fp32_peak: float
    memory_gb: float
    cuda_version: str
    kernel_overhead_us: float = 8.0

    @property
    def mem_bw_bytes(self) -> float:
        return self.mem_bw * 1e9

    @property
    def fp32_flops(self) -> float:
        return self.fp32_peak * 1e12


#: Table I: A100 (40 GB) on ALCF ThetaGPU
A100_THETA = DeviceSpec(name="A100", testbed="ThetaGPU", mem_bw=1555.0,
                        fp32_peak=19.49, memory_gb=40.0,
                        cuda_version="11.4")

#: Table I: A40 (48 GB) on ANL JLSE
A40_JLSE = DeviceSpec(name="A40", testbed="JLSE", mem_bw=695.8,
                      fp32_peak=37.42, memory_gb=48.0,
                      cuda_version="11.8")

DEVICES = {"a100": A100_THETA, "a40": A40_JLSE}
