"""Transaction/occupancy-level GPU kernel simulator.

The roofline model (:mod:`repro.gpu.perfmodel`) prices kernels with
calibrated per-codec efficiency constants. This simulator replaces those
constants with *mechanisms*: each kernel launch is described by its launch
geometry (grid, threads/block, registers/thread, shared memory/block) and
per-block work (32-byte DRAM sectors moved, FLOPs), and execution is
simulated the way an SM scheduler fills the machine:

1. **Occupancy** — resident blocks per SM follow from the hardest of the
   hardware limits (threads, blocks, shared memory, registers per SM).
   cuSZ-i's spline kernel is exactly the kernel this punishes: the 33x9x9
   float tile costs ~12 KB of shared memory per 256-thread block and the
   multi-level interpolation burns ~2x the registers of a streaming
   Lorenzo kernel, so fewer warps are resident and neither DRAM nor the
   FP32 pipe can be saturated.
2. **Waves** — the grid runs in ``ceil(blocks / (resident * SMs))`` waves;
   a wave costs the larger of its DRAM and compute time (both derated by
   the warp-slot fill), times a *contention* factor for kernels whose
   inner loop serializes on atomics or sub-word merges (histograms,
   Huffman bit-writes — shared by every codec that uses them, never tuned
   per codec).
3. **Dependent stages** — G-Interp's nine level/axis stages must each
   drain the grid before the next starts; every stage pays the wave drain
   latency again. This is the §V-D data-dependency cost made explicit.

The test suite checks that the §VII-C.4 ratios *emerge* from these
mechanisms (cuSZ-i slower than cuSZ on the A100, the gap narrowing on the
A40) with no per-codec fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.gpu.device import DeviceSpec

__all__ = ["SMConfig", "KernelLaunch", "occupancy", "simulate_kernel",
           "simulate_pipeline", "SM_CONFIGS", "pipeline_launches"]

SECTOR = 32  # bytes per DRAM transaction

#: serialization multipliers per kernel *mechanism* (not per codec):
#: shared-memory atomic histograms and bit-granular Huffman merges contend
CONTENTION = {
    "streaming": 1.0,
    "histogram-atomic": 4.0,
    "histogram-topk": 1.3,
    "bit-merge": 6.0,
    "spline": 1.0,
}


@dataclass(frozen=True)
class SMConfig:
    """Per-SM hardware limits (CUDA occupancy inputs)."""

    sm_count: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm: int     # bytes usable by resident blocks
    registers_per_sm: int
    clock_ghz: float
    #: fixed per-wave drain/fill latency (dependent-stage sync cost)
    wave_latency_us: float = 1.0


#: A100 (GA100) and A40 (GA102) SM configurations
SM_CONFIGS = {
    "A100": SMConfig(sm_count=108, max_threads_per_sm=2048,
                     max_blocks_per_sm=32, shared_mem_per_sm=164 * 1024,
                     registers_per_sm=65536, clock_ghz=1.41),
    "A40": SMConfig(sm_count=84, max_threads_per_sm=1536,
                    max_blocks_per_sm=16, shared_mem_per_sm=100 * 1024,
                    registers_per_sm=65536, clock_ghz=1.74),
}


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel launch: geometry + total per-block work.

    ``stages`` counts dependent grid-wide synchronization points inside
    the logical kernel (relaunches); the *work* volumes cover the whole
    kernel, the stages only multiply the drain latency.
    """

    name: str
    grid_blocks: int
    threads_per_block: int
    regs_per_thread: int
    shared_bytes_per_block: int
    sectors_loaded_per_block: float
    sectors_stored_per_block: float
    flops_per_block: float = 0.0
    stages: int = 1
    contention: str = "streaming"

    def __post_init__(self):
        if self.grid_blocks < 1 or self.threads_per_block < 1:
            raise ConfigError("grid and block sizes must be positive")
        if self.threads_per_block > 1024:
            raise ConfigError("threads per block exceeds hardware max")
        if self.contention not in CONTENTION:
            raise ConfigError(f"unknown contention class "
                              f"{self.contention!r}")


def occupancy(launch: KernelLaunch, sm: SMConfig) -> int:
    """Resident blocks per SM (the CUDA occupancy calculation)."""
    limits = [sm.max_blocks_per_sm,
              sm.max_threads_per_sm // launch.threads_per_block]
    if launch.shared_bytes_per_block > 0:
        limits.append(sm.shared_mem_per_sm
                      // launch.shared_bytes_per_block)
    regs_per_block = launch.regs_per_thread * launch.threads_per_block
    if regs_per_block > 0:
        limits.append(sm.registers_per_sm // regs_per_block)
    resident = min(limits)
    if resident < 1:
        raise ConfigError(
            f"kernel {launch.name!r} cannot fit on an SM "
            f"(shared={launch.shared_bytes_per_block}, "
            f"regs/thread={launch.regs_per_thread})")
    return resident


def simulate_kernel(launch: KernelLaunch, device: DeviceSpec,
                    sm: SMConfig) -> float:
    """Simulated execution time of one logical kernel (seconds)."""
    resident = occupancy(launch, sm)
    concurrent = resident * sm.sm_count
    waves = -(-launch.grid_blocks // concurrent)
    fill = min(1.0, (resident * launch.threads_per_block)
               / sm.max_threads_per_sm)

    total_bytes = (launch.sectors_loaded_per_block
                   + launch.sectors_stored_per_block) \
        * SECTOR * launch.grid_blocks
    mem_t = total_bytes / (device.mem_bw_bytes * max(fill, 0.05))
    comp_t = launch.flops_per_block * launch.grid_blocks \
        / (device.fp32_flops * max(fill, 0.05))
    work_t = max(mem_t, comp_t) * CONTENTION[launch.contention]
    sync_t = launch.stages * waves * sm.wave_latency_us * 1e-6
    return work_t + sync_t + launch.stages \
        * device.kernel_overhead_us * 1e-6


def pipeline_launches(codec: str, n_elements: int,
                      compressed_bytes: int) -> list[KernelLaunch]:
    """Launch geometries of a compression pipeline (compress direction).

    Geometries follow the published implementations: cuSZ's fused Lorenzo
    kernel streams 2048-sample tiles with 256 threads and modest register
    use; cuSZ-i's spline kernel stages a 33x9x9 float tile in shared
    memory per 32x8x8 chunk, re-traverses it across nine dependent
    level/axis stages, and holds spline weights and level state in ~64
    registers per thread.
    """
    n = float(n_elements)
    cb = float(compressed_bytes)
    if codec == "cusz":
        tile = 2048.0
        return [
            KernelLaunch(name="lorenzo-dualquant",
                         grid_blocks=int(-(-n // tile)),
                         threads_per_block=256, regs_per_thread=32,
                         shared_bytes_per_block=0,
                         sectors_loaded_per_block=tile * 4 / SECTOR,
                         sectors_stored_per_block=tile * 2 / SECTOR,
                         flops_per_block=tile * 12),
            _histogram_launch(n, topk=False),
            _huffman_encode_launch(n, cb),
        ]
    if codec == "cuszi":
        tile = 32 * 8 * 8
        shared = 33 * 9 * 9 * 4 + 1024   # data tile + stage scratch
        return [
            KernelLaunch(name="ginterp-spline",
                         grid_blocks=int(-(-n // tile)),
                         threads_per_block=256, regs_per_thread=64,
                         shared_bytes_per_block=shared,
                         # tile + halo in, recon + quant-codes out
                         sectors_loaded_per_block=tile * 5 / SECTOR,
                         sectors_stored_per_block=tile * 6 / SECTOR,
                         flops_per_block=tile * 220,
                         stages=9, contention="spline"),
            _histogram_launch(n, topk=True),
            _huffman_encode_launch(n, cb),
        ]
    raise ConfigError(f"no simulator geometry for codec {codec!r}")


def _histogram_launch(n: float, topk: bool) -> KernelLaunch:
    tile = 8192.0
    return KernelLaunch(
        name="histogram-topk" if topk else "histogram",
        grid_blocks=int(-(-n // tile)), threads_per_block=256,
        regs_per_thread=40 if topk else 24,
        shared_bytes_per_block=0 if topk else 4096,
        sectors_loaded_per_block=tile * 2 / SECTOR,
        sectors_stored_per_block=tile * 0.1 / SECTOR,
        flops_per_block=tile * 4,
        contention="histogram-topk" if topk else "histogram-atomic")


def _huffman_encode_launch(n: float, cb: float) -> KernelLaunch:
    tile = 2048.0
    grid = int(-(-n // tile))
    return KernelLaunch(
        name="huffman-encode", grid_blocks=grid, threads_per_block=256,
        regs_per_thread=48, shared_bytes_per_block=8 * 1024,
        sectors_loaded_per_block=tile * 3 / SECTOR,
        sectors_stored_per_block=max(cb / grid, 1.0) / SECTOR,
        flops_per_block=tile * 30, contention="bit-merge")


def simulate_pipeline(codec: str, n_elements: int, compressed_bytes: int,
                      device: DeviceSpec) -> float:
    """Total simulated compression time of a pipeline (seconds)."""
    sm = SM_CONFIGS.get(device.name)
    if sm is None:
        raise ConfigError(f"no SM config for device {device.name!r}")
    return sum(simulate_kernel(k, device, sm)
               for k in pipeline_launches(codec, n_elements,
                                          compressed_bytes))
