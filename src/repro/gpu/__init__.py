"""Analytical GPU performance model (the hardware substitute for Fig. 9/10).

No GPU is available offline, and compression *ratios* don't need one — but
the paper's throughput (Fig. 9) and transfer (Fig. 10) results do. This
package models each compressor's kernel pipeline on the paper's testbeds
(Table I): every kernel is costed as

    ``time = max(bytes / (bw * mem_eff), flops / (peak * flop_eff))
             + fixed overhead``

a roofline with a launch/synchronization floor. Kernel inventories encode
each pipeline's real structure — cuSZ-i pays for many small dependent
spline stages and scattered gathers; Lorenzo pipelines are single streaming
passes — which is what reproduces the paper's §VII-C.4 observations:
cuSZ-i at ~60% of cuSZ's compression throughput on A100 but 70-80% on the
lower-bandwidth A40, where the fixed stage overheads matter less.
"""

from repro.gpu.device import DeviceSpec, A100_THETA, A40_JLSE, DEVICES
from repro.gpu.kernels import Kernel, kernel_time
from repro.gpu.perfmodel import (
    PipelineTiming,
    estimate_throughput,
    pipeline_kernels,
)
from repro.gpu.simulator import (
    KernelLaunch,
    SMConfig,
    SM_CONFIGS,
    occupancy,
    simulate_kernel,
    simulate_pipeline,
)

__all__ = [
    "DeviceSpec",
    "A100_THETA",
    "A40_JLSE",
    "DEVICES",
    "Kernel",
    "kernel_time",
    "PipelineTiming",
    "estimate_throughput",
    "pipeline_kernels",
    "KernelLaunch",
    "SMConfig",
    "SM_CONFIGS",
    "occupancy",
    "simulate_kernel",
    "simulate_pipeline",
]
