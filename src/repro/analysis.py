"""Compression-error assessment toolkit.

The SZ ecosystem ships an assessment tool (qcat) alongside the compressor:
beyond PSNR, scientists check *how* the error is distributed — is it white
(harmless to most post-analysis) or spatially/spectrally structured
(biases derivatives and statistics)? This module provides those checks for
any (original, reconstructed) pair:

* :func:`error_statistics` — moments, percentiles, bound utilization;
* :func:`error_histogram` — distribution of the pointwise error;
* :func:`error_autocorrelation` — lag correlation per axis (structured
  artifacts show up as slowly decaying correlation);
* :func:`spectral_ratio` — reconstructed/original power per wavenumber
  band (transform codecs damp high bands; quantizers add a white floor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import DataError

__all__ = ["ErrorStats", "error_statistics", "error_histogram",
           "error_autocorrelation", "spectral_ratio"]


@dataclass
class ErrorStats:
    """Summary statistics of a pointwise compression error field."""

    max_abs: float
    mean: float                # signed bias
    rmse: float
    p50: float                 # |error| percentiles
    p99: float
    bound_utilization: float   # max|err| / eb (1.0 = bound is tight)
    zero_fraction: float       # fraction of exactly preserved samples

    def format(self) -> str:
        return (f"max|e|={self.max_abs:.3e}  bias={self.mean:+.3e}  "
                f"rmse={self.rmse:.3e}  p50|e|={self.p50:.3e}  "
                f"p99|e|={self.p99:.3e}  "
                f"bound-use={self.bound_utilization * 100:.1f}%  "
                f"exact={self.zero_fraction * 100:.1f}%")


def _error(original: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
    if original.shape != reconstructed.shape:
        raise DataError(f"shape mismatch {original.shape} vs "
                        f"{reconstructed.shape}")
    return reconstructed.astype(np.float64) - original.astype(np.float64)


def error_statistics(original: np.ndarray, reconstructed: np.ndarray,
                     abs_eb: float | None = None) -> ErrorStats:
    """Compute :class:`ErrorStats` for a reconstruction."""
    err = _error(original, reconstructed)
    abs_err = np.abs(err)
    max_abs = float(abs_err.max())
    return ErrorStats(
        max_abs=max_abs,
        mean=float(err.mean()),
        rmse=float(np.sqrt((err * err).mean())),
        p50=float(np.percentile(abs_err, 50)),
        p99=float(np.percentile(abs_err, 99)),
        bound_utilization=(max_abs / abs_eb) if abs_eb else float("nan"),
        zero_fraction=float((err == 0).mean()),
    )


def error_histogram(original: np.ndarray, reconstructed: np.ndarray,
                    bins: int = 64,
                    abs_eb: float | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of the signed error over ``[-eb, +eb]`` (or data range).

    Returns ``(counts, bin_edges)``. Error-bounded quantizers produce a
    near-uniform histogram inside the bound; prediction-dominated regimes
    concentrate near zero.
    """
    err = _error(original, reconstructed)
    lim = abs_eb if abs_eb else float(np.abs(err).max()) or 1.0
    return np.histogram(err, bins=bins, range=(-lim, lim))


def error_autocorrelation(original: np.ndarray, reconstructed: np.ndarray,
                          max_lag: int = 8) -> np.ndarray:
    """Per-axis lag autocorrelation of the error field.

    Returns an ``(ndim, max_lag + 1)`` array; row ``ax``, column ``k`` is
    the correlation of the error with itself shifted ``k`` samples along
    axis ``ax`` (lag 0 == 1). White quantization noise decays immediately;
    values staying high reveal structured (visible) artifacts.
    """
    err = _error(original, reconstructed)
    for ax, n in enumerate(err.shape):
        if n <= max_lag:
            raise DataError(f"axis {ax} shorter than max_lag={max_lag}")
    err = err - err.mean()
    denom = float((err * err).mean())
    out = np.ones((err.ndim, max_lag + 1))
    if denom == 0:
        return out
    for ax in range(err.ndim):
        n = err.shape[ax]
        for lag in range(1, max_lag + 1):
            a = np.take(err, np.arange(0, n - lag), axis=ax)
            b = np.take(err, np.arange(lag, n), axis=ax)
            out[ax, lag] = float((a * b).mean() / denom)
    return out


def spectral_ratio(original: np.ndarray, reconstructed: np.ndarray,
                   n_bands: int = 16) -> np.ndarray:
    """Reconstructed-to-original power ratio per isotropic frequency band.

    Returns ``n_bands`` ratios from the lowest to the highest wavenumber
    band (1.0 = spectrum preserved). Fixed-rate transform codecs show
    decaying tails; error-bounded predictors show a rising tail where the
    quantization noise floor exceeds the (tiny) original power.
    """
    a = np.fft.rfftn(original.astype(np.float64))
    b = np.fft.rfftn(reconstructed.astype(np.float64))
    shape = original.shape
    kgrids = []
    for ax, n in enumerate(shape):
        if ax == len(shape) - 1:
            k = np.fft.rfftfreq(n)
        else:
            k = np.fft.fftfreq(n)
        view = [1] * len(shape)
        view[ax] = k.size
        kgrids.append((k * 2).reshape(view))  # normalized to Nyquist=1
    kk = np.sqrt(sum(k ** 2 for k in kgrids))
    edges = np.linspace(0, float(kk.max()) + 1e-12, n_bands + 1)
    which = np.clip(np.searchsorted(edges, kk.ravel(), side="right") - 1,
                    0, n_bands - 1)
    pa = np.bincount(which, weights=np.abs(a.ravel()) ** 2,
                     minlength=n_bands)
    pb = np.bincount(which, weights=np.abs(b.ravel()) ** 2,
                     minlength=n_bands)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(pa > 0, pb / pa, 1.0)
    return ratio
