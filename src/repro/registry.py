"""Compressor registry and the common compressor protocol.

Every compressor in this reproduction — cuSZ-i and the six baselines —
implements the same small surface:

* ``name`` — registry key;
* ``compress(ndarray) -> bytes`` — self-describing container blob;
* ``decompress(bytes) -> ndarray`` — original shape and dtype restored.

so experiments iterate over compressors uniformly, and
:func:`repro.decompress` can route any blob to its codec by the container's
codec field.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.common.errors import ConfigError

__all__ = ["Compressor", "register", "get_compressor", "available",
           "decompress_any"]


@runtime_checkable
class Compressor(Protocol):
    """Minimal protocol every registered compressor satisfies."""

    name: str

    def compress(self, data: np.ndarray) -> bytes:
        """Compress a float field into a self-describing blob."""
        ...

    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct the field from a blob produced by ``compress``."""
        ...


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a compressor to the registry by its name."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigError(f"{cls!r} lacks a string `name` attribute")
    if name in _REGISTRY:
        raise ConfigError(f"compressor {name!r} registered twice")
    _REGISTRY[name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the modules that register compressors (idempotent)."""
    import repro.core.pipeline  # noqa: F401
    import repro.baselines  # noqa: F401


def available() -> list[str]:
    """Names of all registered compressors."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered compressor by name with its kwargs."""
    _ensure_loaded()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown compressor {name!r}; available: {sorted(_REGISTRY)}")
    return cls(**kwargs)


def decompress_any(blob: bytes) -> np.ndarray:
    """Decompress a blob produced by any registered compressor.

    The codec is read from the container header; codec parameters needed
    for decoding all travel in the stream, so a default-constructed
    instance can decode it.
    """
    _ensure_loaded()
    from repro.common.lossless_wrap import peek_codec
    codec = peek_codec(blob)
    if codec not in _REGISTRY:
        raise ConfigError(f"blob was produced by unknown codec {codec!r}")
    return _REGISTRY[codec]().decompress(blob)
