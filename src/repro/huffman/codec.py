"""Coarse-grained chunked Huffman encode/decode (paper §VI-A).

Encoding mirrors the cuSZ GPU encoder: the symbol stream is split into
fixed-size chunks (one per thread block on the GPU); every chunk's bitstream
starts on a byte boundary, and per-chunk bit lengths are recorded so chunks
are independently decodable.

* **Encode** is chunk-vectorized end to end. The default ``vector``
  engine gathers one packed ``(code, length)`` 64-bit pair per symbol,
  derives every codeword's absolute bit offset from an exclusive prefix
  sum of the gathered lengths (rebased per chunk to the byte-aligned
  chunk starts), and emits the whole stream through one
  :func:`repro.common.bitpack.pack_varbits64` scatter-OR into 64-bit
  output words — the exact mirror of the decode-side window gather. The
  retained ``loop`` engine is the previous three-byte-plane
  :func:`repro.common.bitpack.pack_varbits` emitter; both engines share
  the chunk-layout math and are byte-identical by construction (asserted
  in CI). Dynamic codebooks are resolved through
  :func:`repro.huffman.tree.fingerprint_code_lengths`, so eb-retunes and
  timestep streams skip the tree build and prewarm the decode LUT.
* **Decode** steps all chunks simultaneously. The default ``lut`` engine
  gathers one 64-bit window per chunk per outer step and then chains
  multi-symbol LUT probes inside it: each probe reads the next ``K``
  bits (:data:`repro.huffman.canonical.LUT_PROBE_BITS`) and emits every
  complete codeword they contain in a single gather, falling back to the
  flat ``MAX_CODE_LEN`` table only for the rare codeword wider than the
  probe. The retained ``loop`` engine is the previous
  one-codeword-per-table-lookup decoder, kept for cross-engine
  equivalence testing (byte-identical output is asserted in CI).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.common.bitpack import pack_varbits, pack_varbits64
from repro.common.errors import CodecError, CorruptStreamError
from repro.huffman.canonical import (MAX_CODE_LEN, build_decode_table,
                                     build_lut_tables, canonical_codebook)
from repro.huffman.histogram import histogram
from repro.huffman.tree import fingerprint_code_lengths

__all__ = ["huffman_encode", "huffman_decode", "HuffmanStream",
           "DEFAULT_CHUNK", "DECODE_ENGINES", "ENCODE_ENGINES"]

#: default symbols per chunk for new streams. 256 (was 2048) widens the
#: chunk-parallel front the batched LUT decoder advances over by 8x —
#: the decode wall scales with symbols-per-chunk, not stream length —
#: at the cost of 4 bytes of chunk table per extra chunk (~2% of a
#: typical 64**3 container before the orchestrator losslessly packs the
#: highly regular chunk table back down). Streams self-describe their
#: chunk size, so any chunk size remains decodable by both engines.
DEFAULT_CHUNK = 256
_HDR = struct.Struct("<QIIII")  # n_symbols, alphabet, chunk_size, n_chunks, crc32

#: decode engines selectable per call or via ``REPRO_HUFFMAN_ENGINE``
DECODE_ENGINES = ("lut", "loop")

#: encode engines selectable per call or via ``REPRO_HUFFMAN_ENCODE_ENGINE``
ENCODE_ENGINES = ("vector", "loop")


@dataclass
class HuffmanStream:
    """A serialized chunked-Huffman stream."""

    n_symbols: int
    alphabet_size: int
    chunk_size: int
    lengths: np.ndarray      # uint8[alphabet] canonical code lengths
    chunk_bits: np.ndarray   # uint32[n_chunks] payload bits per chunk
    payload: np.ndarray      # uint8, concatenated byte-aligned chunks
    crc32: int = 0           # checksum of the payload (corruption guard)

    def to_bytes(self) -> bytes:
        head = _HDR.pack(self.n_symbols, self.alphabet_size,
                         self.chunk_size, int(self.chunk_bits.size),
                         self.crc32)
        return (head + self.lengths.astype(np.uint8).tobytes()
                + self.chunk_bits.astype(np.uint32).tobytes()
                + self.payload.tobytes())

    @classmethod
    def from_bytes(cls, blob: bytes) -> "HuffmanStream":
        if len(blob) < _HDR.size:
            raise CorruptStreamError("truncated Huffman stream header")
        n_symbols, alphabet, chunk_size, n_chunks, crc = \
            _HDR.unpack_from(blob, 0)
        pos = _HDR.size
        if len(blob) < pos + alphabet + 4 * n_chunks:
            raise CorruptStreamError("truncated Huffman stream tables")
        lengths = np.frombuffer(blob, np.uint8, alphabet, pos)
        pos += alphabet
        chunk_bits = np.frombuffer(blob, np.uint32, n_chunks, pos)
        pos += 4 * n_chunks
        payload = np.frombuffer(blob, np.uint8, offset=pos)
        return cls(n_symbols=n_symbols, alphabet_size=alphabet,
                   chunk_size=chunk_size, lengths=lengths,
                   chunk_bits=chunk_bits, payload=payload, crc32=crc)

    @property
    def nbytes(self) -> int:
        return (_HDR.size + self.lengths.size + 4 * self.chunk_bits.size
                + self.payload.size)


# below this symbol count the whole bit-offset computation fits uint32
# (total bits <= n * MAX_CODE_LEN), halving the memory traffic of the
# layout and scatter index arrays on the encode hot path
_NARROW_LAYOUT_SYMBOLS = ((1 << 32) - 64) // MAX_CODE_LEN


def _chunk_layout(sym_len: np.ndarray, n: int, chunk_size: int):
    """Per-chunk bit counts and byte-aligned per-symbol bit offsets.

    Shared by both encode engines so their streams agree bit for bit:
    chunk boundaries, padding, and every codeword's landing position are
    decided here, and the engines differ only in how bits are emitted.
    The offset arithmetic is exact in either dtype; uint32 is chosen
    whenever the stream's total bit count cannot overflow it, and the
    cumulative-sum buffer is reused in place for the exclusive scan and
    the rebased positions so only two full-size arrays are ever live.
    """
    n_chunks = -(-n // chunk_size)
    bounds = np.arange(0, n_chunks * chunk_size, chunk_size)
    ends = np.minimum(bounds + chunk_size, n)
    acc = np.uint32 if n <= _NARROW_LAYOUT_SYMBOLS else np.int64

    cum = np.cumsum(sym_len, dtype=acc)        # inclusive bit scan
    end_bits = cum[ends - 1].astype(np.int64)
    np.subtract(cum, sym_len, out=cum, casting="unsafe")
    chunk_first = cum[bounds].astype(np.int64)  # first symbol's offset
    chunk_bits = (end_bits - chunk_first).astype(np.uint32)
    chunk_bytes = -(-chunk_bits.astype(np.int64) // 8)
    chunk_byte_off = np.concatenate(([0], np.cumsum(chunk_bytes)))

    # rebase global bit offsets to chunk-local byte-aligned positions:
    # the adjustment (chunk_byte_off*8 - chunk_first) is constant within
    # a chunk (and non-negative, since byte alignment only adds padding),
    # so repeat each chunk's adjustment across its symbols
    adj = (chunk_byte_off[:-1] * 8 - chunk_first).astype(acc)
    np.add(cum, np.repeat(adj, ends - bounds), out=cum, casting="unsafe")
    return chunk_bits, cum, int(chunk_byte_off[-1]), n_chunks


def huffman_encode(codes: np.ndarray, alphabet_size: int,
                   chunk_size: int = DEFAULT_CHUNK,
                   lengths: np.ndarray | None = None,
                   engine: str | None = None) -> HuffmanStream:
    """Encode a symbol stream into a chunked canonical Huffman stream.

    Passing prebuilt ``lengths`` (see :mod:`repro.huffman.static`) skips
    the histogram and tree build — the paper's §VI-A speed direction — at
    the cost of a slightly suboptimal code.

    ``engine`` selects the emitter: ``"vector"`` (default; packed-pair
    gather plus one word-level scatter-OR) or ``"loop"`` (the previous
    byte-plane emitter, kept for cross-engine equivalence testing).
    ``REPRO_HUFFMAN_ENCODE_ENGINE`` overrides the default. Both engines
    produce byte-identical streams.
    """
    if chunk_size < 1:
        raise CodecError("chunk size must be >= 1")
    if engine is None:
        engine = os.environ.get("REPRO_HUFFMAN_ENCODE_ENGINE", "vector")
    if engine not in ENCODE_ENGINES:
        raise CodecError(f"unknown Huffman encode engine {engine!r}")
    codes = np.asarray(codes, dtype=np.uint32).ravel()
    n = codes.size
    with telemetry.span("huffman.codebook", n_symbols=n,
                        alphabet=alphabet_size,
                        static=lengths is not None):
        if lengths is None:
            freqs = histogram(codes, alphabet_size)
            prewarm = os.environ.get(
                "REPRO_HUFFMAN_LUT_PREWARM", "1") != "0"
            lengths = fingerprint_code_lengths(freqs, MAX_CODE_LEN,
                                               prewarm_lut=prewarm)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.size != alphabet_size:
                raise CodecError("static codebook size mismatch")
            if n and int(lengths[codes].min(initial=1)) == 0:
                raise CodecError(
                    "static codebook lacks a code for a symbol")
        codebook = canonical_codebook(lengths)
    if n == 0:
        return HuffmanStream(0, alphabet_size, chunk_size,
                             lengths.astype(np.uint8),
                             np.empty(0, np.uint32), np.empty(0, np.uint8),
                             crc32=0)

    with telemetry.span("huffman.pack", n_symbols=n, engine=engine) as sp:
        if engine == "vector":
            # one packed pair per alphabet symbol: MSB-aligned codeword in
            # the high bits, its length in the low byte. A single gather
            # then yields both the staged bits and the per-symbol length,
            # and the emitter never shifts codes again.
            lu = lengths.astype(np.uint64)
            sh = np.where(lu > 0, np.uint64(64) - lu, np.uint64(0))
            pair64 = np.where(
                lu > 0, (codebook.astype(np.uint64) << sh) | lu,
                np.uint64(0))
            g = pair64[codes]
            sym_len = g.astype(np.uint8)   # truncation keeps the low byte
            chunk_bits, pos, total_bytes, n_chunks = \
                _chunk_layout(sym_len, n, chunk_size)
            g &= np.uint64(0xFFFFFFFFFFFFFF00)  # strip lengths in place
            payload = pack_varbits64(g, sym_len, pos, total_bytes)
        else:
            sym_len = lengths[codes]               # int64 per-symbol lengths
            chunk_bits, pos, total_bytes, n_chunks = \
                _chunk_layout(sym_len, n, chunk_size)
            payload = pack_varbits(codebook[codes], sym_len, pos,
                                   total_bytes)
        sp.set(bytes_out=int(payload.size), n_chunks=int(n_chunks))
    return HuffmanStream(n_symbols=n, alphabet_size=alphabet_size,
                         chunk_size=chunk_size,
                         lengths=lengths.astype(np.uint8),
                         chunk_bits=chunk_bits, payload=payload,
                         crc32=zlib.crc32(payload.tobytes()))


def huffman_decode(stream: HuffmanStream,
                   engine: str | None = None) -> np.ndarray:
    """Decode a :class:`HuffmanStream` back into its uint32 symbol array.

    ``engine`` selects the decoder: ``"lut"`` (default; multi-symbol
    probe, chunk-parallel) or ``"loop"`` (legacy one-symbol-per-lookup
    reference). ``REPRO_HUFFMAN_ENGINE`` overrides the default. Both
    engines produce byte-identical output and raise
    :class:`~repro.common.errors.CorruptStreamError` on the same corrupt
    inputs.
    """
    if engine is None:
        engine = os.environ.get("REPRO_HUFFMAN_ENGINE", "lut")
    if engine not in DECODE_ENGINES:
        raise CodecError(f"unknown Huffman decode engine {engine!r}")
    with telemetry.span("huffman.unpack", n_symbols=stream.n_symbols,
                        bytes_in=int(stream.payload.size), engine=engine):
        if engine == "lut":
            return _decode_lut(stream)
        return _decode_loop(stream)


def _decode_prepare(stream: HuffmanStream):
    """Shared validation + per-chunk cursor state for both engines."""
    n = stream.n_symbols
    chunk_size = stream.chunk_size
    if chunk_size < 1:
        raise CorruptStreamError("chunk size must be >= 1")
    n_chunks = int(stream.chunk_bits.size)
    if n_chunks != -(-n // chunk_size):
        raise CorruptStreamError("chunk count inconsistent with symbol count")
    if zlib.crc32(np.ascontiguousarray(stream.payload).tobytes()) \
            != stream.crc32:
        raise CorruptStreamError("Huffman payload checksum mismatch")
    chunk_bytes = -(-stream.chunk_bits.astype(np.int64) // 8)
    chunk_byte_off = np.concatenate(([0], np.cumsum(chunk_bytes)))
    if int(chunk_byte_off[-1]) != stream.payload.size:
        raise CorruptStreamError("payload size mismatch")
    # pad so window gathers never read past the end
    pay = np.concatenate([stream.payload, np.zeros(8, np.uint8)])
    counts = np.full(n_chunks, chunk_size, dtype=np.int64)
    counts[-1] = n - chunk_size * (n_chunks - 1)
    bitpos = chunk_byte_off[:-1] * 8
    bit_end = bitpos + stream.chunk_bits.astype(np.int64)
    return pay, counts, bitpos, bit_end


def _decode_lut(stream: HuffmanStream) -> np.ndarray:
    """Chunk-parallel multi-symbol LUT decode.

    One batched advance per step: every still-active chunk gathers the
    32-bit big-endian window at its bit cursor, probes the next
    ``probe_bits`` bits through the multi-symbol LUT, and advances by
    every complete codeword the probe contained (a ``<= 7``-bit byte
    alignment plus a ``<= 16``-bit probe always fits the window, so no
    step ever stalls). Probes that hit a codeword wider than the probe
    take the flat-table fallback within the same step. Symbol *emission*
    is deferred: steps only record ``(probe row, output start, emit
    count)`` triples, and one ragged scatter at the end expands every
    probe of every step into the output array — so per-step cost is a
    handful of width-``n_chunks`` gathers and wall time scales with the
    longest chunk, not the sum of chunk lengths.
    """
    n = stream.n_symbols
    if n == 0:
        return np.empty(0, dtype=np.uint32)
    pay, counts, bitpos, bit_end = _decode_prepare(stream)
    windows8 = np.lib.stride_tricks.sliding_window_view(pay, 8)
    n_chunks = counts.size
    table_sym, table_len = build_decode_table(stream.lengths)
    lut_count, lut_cum, lut_syms = build_lut_tables(stream.lengths)
    probe_bits = _probe_width(lut_count)
    # flattened cum-bits gather (row*stride + emit) beats 2-D fancy
    # indexing in the slot loops below; the leading zero column of
    # ``lut_cum`` makes zero-emit lanes advance by 0 with no masking
    cum_flat = lut_cum.ravel()
    cstride = lut_cum.shape[1]
    kmask = np.int64((1 << probe_bits) - 1)
    fmask = np.int64((1 << MAX_CODE_LEN) - 1)
    # chained probe slots per gathered word: after <= 7 alignment bits a
    # 64-bit word always holds this many probes of typical advance
    slots = max(1, (64 - 7) // probe_bits)

    base = np.arange(n_chunks, dtype=np.int64) * stream.chunk_size
    decoded = np.zeros(n_chunks, dtype=np.int64)
    active = np.arange(n_chunks)
    full_probe = probe_bits == MAX_CODE_LEN
    probes, starts, emits = [], [], []      # LUT probes, replayed at the end
    fb_wins, fb_starts = [], []             # flat-table fallback singles
    while active.size:
        bp = bitpos[active]
        byte = np.minimum(bp >> 3, pay.size - 8)  # drift-safe gather
        # big-endian *signed* view: arithmetic shift then mask extracts
        # the same bit field a logical shift would, without uint64
        # mixed-dtype shift headaches
        word = windows8[byte].view(">i8").ravel().astype(np.int64)
        off0 = bp & 7
        off = off0.copy()                    # bit cursor within the word
        here = base[active] + decoded[active]
        rem = counts[active] - decoded[active]
        if full_probe:
            # a full-width probe always contains >= 1 complete codeword
            # of a valid stream (no codeword outgrows MAX_CODE_LEN), so
            # the fallback branch vanishes; and 7 + slots*MAX_CODE_LEN
            # <= 64 keeps every slot's shift inside the gathered word
            for _ in range(slots):
                probe = (word >> (64 - MAX_CODE_LEN - off)) & kmask
                raw = lut_count[probe]
                if np.any((raw == 0) & (rem > 0)):
                    raise CorruptStreamError(
                        "corrupt Huffman payload (invalid codeword)")
                emit = np.minimum(raw, rem)
                adv = cum_flat[probe * cstride + emit]
                probes.append(probe)
                starts.append(here.copy())
                emits.append(emit)
                off += adv
                here += emit
                rem -= emit
            bitpos[active] += off - off0
            decoded[active] = counts[active] - rem
            active = active[rem > 0]
            continue
        for _ in range(slots):
            # a slot is feasible while the widest codeword still fits the
            # word; infeasible lanes idle until the next gather
            can = (off + MAX_CODE_LEN <= 64) & (rem > 0)
            probe = (word >> np.maximum(64 - probe_bits - off, 0)) & kmask
            raw = lut_count[probe].astype(np.int64)
            fbm = can & (raw == 0)
            if fbm.any():
                # first codeword wider than the probe: one flat-table step
                fb = np.flatnonzero(fbm)
                win = (word[fb] >> (64 - MAX_CODE_LEN - off[fb])) & fmask
                ln = table_len[win].astype(np.int64)
                if np.any(ln == 0):
                    raise CorruptStreamError(
                        "corrupt Huffman payload (invalid codeword)")
                fb_wins.append(win)
                fb_starts.append(here[fb])
                off[fb] += ln
                here[fb] += 1
                rem[fb] -= 1
            emit = np.minimum(np.where(can, raw, 0), rem)
            adv = cum_flat[probe * cstride + emit]
            probes.append(probe)
            starts.append(here.copy())
            emits.append(emit)
            off += adv
            here += emit
            rem -= emit
        bitpos[active] += off - off0
        decoded[active] = counts[active] - rem
        active = active[rem > 0]
    if np.any(bitpos != bit_end):
        raise CorruptStreamError("chunk bit counts do not match decoded "
                                 "stream")

    out = np.empty(n, dtype=np.uint32)
    if probes:
        pr = np.concatenate(probes)
        st = np.concatenate(starts)
        em = np.concatenate(emits)
        # idle lanes (chunk already drained within the step) record
        # zero-emit probes; dropping them up front shrinks the ragged
        # replay below, whose cost scales with the probe count
        keep = np.flatnonzero(em)
        pr, st, em = pr[keep], st[keep], em[keep]
        # ragged replay: per probe p, symbols lut_syms[pr[p], :em[p]]
        # land at out[st[p]:st[p]+em[p]]. Folding the exclusive prefix
        # sum into both bases keeps this at two repeats + one arange —
        # this is the hottest allocation of the whole decode
        csum = np.cumsum(em)
        excl = csum - em
        ranges = np.arange(int(csum[-1]) if em.size else 0,
                           dtype=np.int64)
        out[np.repeat(st - excl, em) + ranges] = \
            lut_syms.ravel()[np.repeat(pr * lut_syms.shape[1] - excl, em)
                             + ranges]
    if fb_wins:
        win = np.concatenate(fb_wins)
        out[np.concatenate(fb_starts)] = table_sym[win]
    return out


def _probe_width(lut_count: np.ndarray) -> int:
    width = int(lut_count.size).bit_length() - 1
    if (1 << width) != lut_count.size:
        raise CodecError("LUT size is not a power of two")
    return width


def _decode_loop(stream: HuffmanStream) -> np.ndarray:
    """Legacy reference decoder: one codeword per flat-table lookup,
    up to three lookups per 64-bit window gather."""
    n = stream.n_symbols
    if n == 0:
        return np.empty(0, dtype=np.uint32)
    pay, counts, bitpos, bit_end = _decode_prepare(stream)
    windows8 = np.lib.stride_tricks.sliding_window_view(pay, 8)
    n_chunks = counts.size
    table_sym, table_len = build_decode_table(stream.lengths)

    # flat output sized to n (not a padded (n_chunks, chunk_size) matrix):
    # chunk c's symbols land at c*chunk_size + step, and only the final
    # chunk is short, so every index stays < n
    out = np.empty(n, dtype=np.uint32)
    base = np.arange(n_chunks, dtype=np.int64) * stream.chunk_size
    decoded = np.zeros(n_chunks, dtype=np.int64)
    mask = np.uint64((1 << MAX_CODE_LEN) - 1)
    # one 64-bit gather decodes up to K symbols per chunk per step: after
    # the <= 7 alignment bits, 57 bits remain — three <=16-bit codewords
    k_per_step = (64 - 7) // MAX_CODE_LEN
    active = np.arange(n_chunks)
    while active.size:
        bp = bitpos[active]
        byte = np.minimum(bp >> 3, pay.size - 8)  # drift-safe gather
        word = windows8[byte].view(">u8").ravel().astype(np.uint64)
        bitoff = bp & 7
        consumed = np.zeros(active.size, dtype=np.int64)
        live = np.arange(active.size)  # positions into `active`
        for _ in range(k_per_step):
            sh = (64 - MAX_CODE_LEN
                  - bitoff[live] - consumed[live]).astype(np.uint64)
            window = (word[live] >> sh) & mask
            ln = table_len[window].astype(np.int64)
            if np.any(ln == 0):
                raise CorruptStreamError(
                    "corrupt Huffman payload (invalid codeword)")
            chunks = active[live]
            out[base[chunks] + decoded[chunks]] = table_sym[window]
            consumed[live] += ln
            decoded[chunks] += 1
            live = live[decoded[active[live]] < counts[active[live]]]
            if live.size == 0:
                break
        bitpos[active] += consumed
        active = active[decoded[active] < counts[active]]
    if np.any(bitpos != bit_end):
        raise CorruptStreamError("chunk bit counts do not match decoded "
                                 "stream")
    return out
