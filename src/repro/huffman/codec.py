"""Coarse-grained chunked Huffman encode/decode (paper §VI-A).

Encoding mirrors the cuSZ GPU encoder: the symbol stream is split into
fixed-size chunks (one per thread block on the GPU); every chunk's bitstream
starts on a byte boundary, and per-chunk bit lengths are recorded so chunks
are independently decodable.

* **Encode** is a single vectorized bit scatter: per-symbol bit positions
  come from a prefix sum of code lengths, then one pass per bit index of the
  longest codeword writes all symbols' bits at once.
* **Decode** steps all chunks simultaneously — per step, one 64-bit window
  gather per chunk decodes up to three codewords via the flat table — the
  NumPy analogue of the one-thread-block-per-chunk GPU decoder.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.common.errors import CodecError
from repro.huffman.canonical import (MAX_CODE_LEN, build_decode_table,
                                     canonical_codebook)
from repro.huffman.histogram import histogram
from repro.huffman.tree import code_lengths

__all__ = ["huffman_encode", "huffman_decode", "HuffmanStream",
           "DEFAULT_CHUNK"]

DEFAULT_CHUNK = 2048
_HDR = struct.Struct("<QIIII")  # n_symbols, alphabet, chunk_size, n_chunks, crc32


@dataclass
class HuffmanStream:
    """A serialized chunked-Huffman stream."""

    n_symbols: int
    alphabet_size: int
    chunk_size: int
    lengths: np.ndarray      # uint8[alphabet] canonical code lengths
    chunk_bits: np.ndarray   # uint32[n_chunks] payload bits per chunk
    payload: np.ndarray      # uint8, concatenated byte-aligned chunks
    crc32: int = 0           # checksum of the payload (corruption guard)

    def to_bytes(self) -> bytes:
        head = _HDR.pack(self.n_symbols, self.alphabet_size,
                         self.chunk_size, int(self.chunk_bits.size),
                         self.crc32)
        return (head + self.lengths.astype(np.uint8).tobytes()
                + self.chunk_bits.astype(np.uint32).tobytes()
                + self.payload.tobytes())

    @classmethod
    def from_bytes(cls, blob: bytes) -> "HuffmanStream":
        if len(blob) < _HDR.size:
            raise CodecError("truncated Huffman stream header")
        n_symbols, alphabet, chunk_size, n_chunks, crc = \
            _HDR.unpack_from(blob, 0)
        pos = _HDR.size
        lengths = np.frombuffer(blob, np.uint8, alphabet, pos)
        pos += alphabet
        chunk_bits = np.frombuffer(blob, np.uint32, n_chunks, pos)
        pos += 4 * n_chunks
        payload = np.frombuffer(blob, np.uint8, offset=pos)
        return cls(n_symbols=n_symbols, alphabet_size=alphabet,
                   chunk_size=chunk_size, lengths=lengths,
                   chunk_bits=chunk_bits, payload=payload, crc32=crc)

    @property
    def nbytes(self) -> int:
        return (_HDR.size + self.lengths.size + 4 * self.chunk_bits.size
                + self.payload.size)


def huffman_encode(codes: np.ndarray, alphabet_size: int,
                   chunk_size: int = DEFAULT_CHUNK,
                   lengths: np.ndarray | None = None) -> HuffmanStream:
    """Encode a symbol stream into a chunked canonical Huffman stream.

    Passing prebuilt ``lengths`` (see :mod:`repro.huffman.static`) skips
    the histogram and tree build — the paper's §VI-A speed direction — at
    the cost of a slightly suboptimal code.
    """
    if chunk_size < 1:
        raise CodecError("chunk size must be >= 1")
    codes = np.asarray(codes, dtype=np.uint32).ravel()
    n = codes.size
    with telemetry.span("huffman.codebook", n_symbols=n,
                        alphabet=alphabet_size,
                        static=lengths is not None):
        if lengths is None:
            freqs = histogram(codes, alphabet_size)
            lengths = code_lengths(freqs, MAX_CODE_LEN)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.size != alphabet_size:
                raise CodecError("static codebook size mismatch")
            if n and int(lengths[codes].min(initial=1)) == 0:
                raise CodecError(
                    "static codebook lacks a code for a symbol")
        codebook = canonical_codebook(lengths)
    if n == 0:
        return HuffmanStream(0, alphabet_size, chunk_size,
                             lengths.astype(np.uint8),
                             np.empty(0, np.uint32), np.empty(0, np.uint8),
                             crc32=0)

    with telemetry.span("huffman.pack", n_symbols=n) as sp:
        sym_len = lengths[codes]                   # int64 per-symbol lengths
        sym_code = codebook[codes].astype(np.int64)
        n_chunks = -(-n // chunk_size)
        bounds = np.arange(0, n_chunks * chunk_size, chunk_size)

        cum = np.cumsum(sym_len)
        start_global = cum - sym_len               # bit offset if unchunked
        chunk_first = start_global[bounds]         # first symbol's offset
        ends = np.minimum(bounds + chunk_size, n)
        chunk_bits = (cum[ends - 1] - chunk_first).astype(np.uint32)
        chunk_bytes = -(-chunk_bits.astype(np.int64) // 8)
        chunk_byte_off = np.concatenate(([0], np.cumsum(chunk_bytes)))

        # rebase global bit offsets to chunk-local byte-aligned positions
        # without materializing per-symbol chunk ids: the adjustment
        # (chunk_byte_off*8 - chunk_first) is constant within a chunk, so
        # scatter each chunk's delta at its first symbol and prefix-sum
        adj = chunk_byte_off[:-1] * 8 - chunk_first
        delta = np.zeros(n, dtype=np.int64)
        delta[bounds] = np.diff(adj, prepend=0)
        pos = start_global + np.cumsum(delta)

        total_bytes = int(chunk_byte_off[-1])
        bits = np.zeros(total_bytes * 8, dtype=np.uint8)
        max_len = int(sym_len.max())
        for b in range(max_len):
            mask = sym_len > b
            shift = sym_len[mask] - 1 - b
            bits[pos[mask] + b] = \
                ((sym_code[mask] >> shift) & 1).astype(np.uint8)
        payload = np.packbits(bits) if total_bytes \
            else np.empty(0, np.uint8)
        sp.set(bytes_out=int(payload.size), n_chunks=int(n_chunks))
    return HuffmanStream(n_symbols=n, alphabet_size=alphabet_size,
                         chunk_size=chunk_size,
                         lengths=lengths.astype(np.uint8),
                         chunk_bits=chunk_bits, payload=payload,
                         crc32=zlib.crc32(payload.tobytes()))


def huffman_decode(stream: HuffmanStream) -> np.ndarray:
    """Decode a :class:`HuffmanStream` back into its uint32 symbol array."""
    with telemetry.span("huffman.unpack", n_symbols=stream.n_symbols,
                        bytes_in=int(stream.payload.size)):
        return _huffman_decode(stream)


def _huffman_decode(stream: HuffmanStream) -> np.ndarray:
    n = stream.n_symbols
    if n == 0:
        return np.empty(0, dtype=np.uint32)
    chunk_size = stream.chunk_size
    n_chunks = int(stream.chunk_bits.size)
    if n_chunks != -(-n // chunk_size):
        raise CodecError("chunk count inconsistent with symbol count")
    table_sym, table_len = build_decode_table(stream.lengths)

    if zlib.crc32(np.ascontiguousarray(stream.payload).tobytes()) \
            != stream.crc32:
        raise CodecError("Huffman payload checksum mismatch")
    chunk_bytes = -(-stream.chunk_bits.astype(np.int64) // 8)
    chunk_byte_off = np.concatenate(([0], np.cumsum(chunk_bytes)))
    if int(chunk_byte_off[-1]) != stream.payload.size:
        raise CodecError("payload size mismatch")
    # pad so 8-byte windows never read past the end
    pay = np.concatenate([stream.payload, np.zeros(8, np.uint8)])
    windows8 = np.lib.stride_tricks.sliding_window_view(pay, 8)

    counts = np.full(n_chunks, chunk_size, dtype=np.int64)
    counts[-1] = n - chunk_size * (n_chunks - 1)
    bitpos = chunk_byte_off[:-1] * 8
    bit_end = bitpos + stream.chunk_bits.astype(np.int64)

    # flat output sized to n (not a padded (n_chunks, chunk_size) matrix):
    # chunk c's symbols land at c*chunk_size + step, and only the final
    # chunk is short, so every index stays < n
    out = np.empty(n, dtype=np.uint32)
    base = np.arange(n_chunks, dtype=np.int64) * chunk_size
    decoded = np.zeros(n_chunks, dtype=np.int64)
    mask = np.uint64((1 << MAX_CODE_LEN) - 1)
    # one 64-bit gather decodes up to K symbols per chunk per step: after
    # the <= 7 alignment bits, 57 bits remain — three <=16-bit codewords
    k_per_step = (64 - 7) // MAX_CODE_LEN
    active = np.arange(n_chunks)
    while active.size:
        bp = bitpos[active]
        byte = np.minimum(bp >> 3, pay.size - 8)  # drift-safe gather
        word = windows8[byte].view(">u8").ravel().astype(np.uint64)
        bitoff = bp & 7
        consumed = np.zeros(active.size, dtype=np.int64)
        live = np.arange(active.size)  # positions into `active`
        for _ in range(k_per_step):
            sh = (64 - MAX_CODE_LEN
                  - bitoff[live] - consumed[live]).astype(np.uint64)
            window = (word[live] >> sh) & mask
            ln = table_len[window].astype(np.int64)
            if np.any(ln == 0):
                raise CodecError(
                    "corrupt Huffman payload (invalid codeword)")
            chunks = active[live]
            out[base[chunks] + decoded[chunks]] = table_sym[window]
            consumed[live] += ln
            decoded[chunks] += 1
            live = live[decoded[active[live]] < counts[active[live]]]
            if live.size == 0:
                break
        bitpos[active] += consumed
        active = active[decoded[active] < counts[active]]
    if np.any(bitpos != bit_end):
        raise CodecError("chunk bit counts do not match decoded stream")
    return out
