"""Huffman tree construction with length limiting.

The codebook is built on the CPU (paper §VI-A: with G-Interp's concentrated
histograms, a GPU tree build is not worthwhile; cuSZ-i moves it host-side at
~200 us end-to-end). We build the optimal tree with a heap, then limit code
lengths to :data:`repro.huffman.canonical.MAX_CODE_LEN` so the decoder can
use a single flat lookup table — the standard trick of clamping and then
restoring the Kraft inequality by lengthening the cheapest (least frequent)
short codes.

:func:`fingerprint_code_lengths` layers a **quantized-fingerprint cache**
on top: the histogram is reduced to its support plus quarter-``log2``
frequency magnitudes, and the tree is built from *representative*
frequencies reconstructed from that fingerprint. Two histograms with the
same fingerprint — an eb-retune of the same field, successive timesteps
of a stream — then share one tree build. Because the lengths are a pure
function of the fingerprint (never of raw counts or of cache history),
every execution path emits byte-identical streams for byte-identical
inputs, warm or cold, serial or pooled. ``REPRO_HUFFMAN_CODEBOOK_CACHE=0``
bypasses the fingerprint entirely and builds the exact-optimal tree from
the raw counts.
"""

from __future__ import annotations

import heapq
import os
import threading
from collections import OrderedDict
from itertools import count

import numpy as np

from repro import telemetry
from repro.telemetry import caches
from repro.common.errors import CodecError

__all__ = ["code_lengths", "fingerprint_code_lengths",
           "histogram_fingerprint", "clear_fingerprint_cache",
           "fingerprint_cache_stats"]

#: quarter-log2 frequency resolution of the histogram fingerprint: counts
#: within ~19% of each other collapse into the same bucket, which is far
#: below what a length-limited Huffman code can distinguish
_FP_LOG_SCALE = 4.0

#: distinct fingerprints remembered; timestep streams reuse one entry,
#: multi-field runs a handful
_FP_CACHE_SIZE = 64

_fp_lock = threading.Lock()
_fp_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
_fp_stats = {"hits": 0, "misses": 0, "evictions": 0}


def _tree_lengths(freqs: np.ndarray) -> np.ndarray:
    """Unrestricted optimal code lengths for the nonzero-frequency symbols.

    Heap merge over parent pointers: each merge records only the two
    children's parent node, and leaf depths are recovered afterwards by
    one reverse sweep over the creation-ordered node array (a parent is
    always created after its children). Merge order — and therefore the
    resulting lengths — is identical to the classic subtree-list variant
    because the unique tiebreak counter decides every weight tie before
    payloads would ever be compared; this just drops the O(alphabet)
    list concatenation from every merge.
    """
    sym = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if sym.size == 0:
        return lengths
    if sym.size == 1:
        lengths[sym[0]] = 1  # a lone symbol still needs one bit per element
        return lengths
    m = sym.size
    tiebreak = count()
    heap: list[tuple[int, int, int]] = [
        (int(freqs[s]), next(tiebreak), i) for i, s in enumerate(sym)
    ]
    heapq.heapify(heap)
    parent = np.zeros(2 * m - 1, dtype=np.int64)
    next_id = m
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        parent[n1] = next_id
        parent[n2] = next_id
        heapq.heappush(heap, (w1 + w2, next(tiebreak), next_id))
        next_id += 1
    depth = np.zeros(next_id, dtype=np.int64)
    for node in range(next_id - 2, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths[sym] = depth[:m]
    return lengths


def code_lengths(freqs: np.ndarray, max_len: int) -> np.ndarray:
    """Length-limited Huffman code lengths per symbol (0 = unused symbol).

    Builds the optimal tree, clamps any over-long codes to ``max_len``, then
    repairs the Kraft sum by incrementing the lengths of the least frequent
    symbols until the code is realizable. Guaranteed to terminate whenever
    the alphabet fits in ``max_len`` bits.
    """
    freqs = np.asarray(freqs, dtype=np.int64).ravel()
    if np.any(freqs < 0):
        raise CodecError("negative frequency")
    n_used = int(np.count_nonzero(freqs))
    if n_used > (1 << max_len):
        raise CodecError(
            f"{n_used} symbols cannot fit in {max_len}-bit codes")
    lengths = _tree_lengths(freqs)
    if n_used == 0:
        return lengths
    over = lengths > max_len
    if not np.any(over):
        return lengths
    lengths[over] = max_len

    # Kraft sum in units of 2^-max_len; must come down to <= 2^max_len.
    unit = 1 << max_len
    kraft = int(np.sum((unit >> lengths[lengths > 0]).astype(np.int64)))
    if kraft > unit:
        # lengthen least-frequent symbols first; each +1 on a symbol of
        # length l releases 2^(max_len - l - 1) units.
        order = np.flatnonzero(freqs)
        order = order[np.argsort(freqs[order], kind="stable")]
        while kraft > unit:
            progressed = False
            for s in order:
                if lengths[s] < max_len:
                    kraft -= unit >> (lengths[s] + 1)
                    lengths[s] += 1
                    progressed = True
                    if kraft <= unit:
                        break
            if not progressed:  # pragma: no cover - guarded by n_used check
                raise CodecError("cannot satisfy Kraft inequality")
    return lengths


# -- quantized-fingerprint codebook cache ------------------------------------

def histogram_fingerprint(freqs: np.ndarray) -> tuple[bytes, np.ndarray]:
    """Reduce a histogram to ``(key, representative frequencies)``.

    The key is the nonzero support plus each count's quarter-``log2``
    magnitude bucket; the representative counts are reconstructed **from
    the buckets**, so any two histograms sharing a key also share the
    exact representative vector — and therefore the exact tree. The
    largest bucket is normalized to ``2**40`` so weight sums stay well
    inside int64 for any alphabet a 16-bit code can hold.
    """
    freqs = np.asarray(freqs, dtype=np.int64).ravel()
    nz = np.flatnonzero(freqs > 0)
    if nz.size == 0:
        return (freqs.size.to_bytes(8, "little"),
                np.zeros(freqs.size, dtype=np.int64))
    qlog = np.rint(np.log2(freqs[nz].astype(np.float64))
                   * _FP_LOG_SCALE).astype(np.int64)
    key = (freqs.size.to_bytes(8, "little")
           + nz.astype(np.int64).tobytes() + qlog.tobytes())
    rep = np.zeros(freqs.size, dtype=np.int64)
    scaled = 2.0 ** ((qlog - qlog.max()) / _FP_LOG_SCALE + 40.0)
    rep[nz] = np.maximum(np.rint(scaled).astype(np.int64), 1)
    return key, rep


def fingerprint_code_lengths(freqs: np.ndarray, max_len: int, *,
                             prewarm_lut: bool = False) -> np.ndarray:
    """:func:`code_lengths` behind the quantized-fingerprint LRU.

    Misses build the tree from the fingerprint's representative counts
    (not the raw ones) so a later hit on the same fingerprint returns the
    identical length vector — stream bytes are a pure function of the
    input histogram, independent of cache state.

    ``prewarm_lut=True`` additionally kicks off an off-thread probe-LUT
    build on a cache *hit*: a recurring codebook predicts a near-future
    decode of the same stream family, so its decode surface is built
    while the encode is still running instead of inside that decode.
    """
    if os.environ.get("REPRO_HUFFMAN_CODEBOOK_CACHE", "1") == "0":
        return code_lengths(np.asarray(freqs, dtype=np.int64).ravel(),
                            max_len)
    key, rep = histogram_fingerprint(freqs)
    key = max_len.to_bytes(2, "little") + key
    with _fp_lock:
        hit = _fp_cache.get(key)
        if hit is not None:
            _fp_cache.move_to_end(key)
            _fp_stats["hits"] += 1
    if hit is not None:
        telemetry.incr("huffman.fingerprint_cache.hit")
        if prewarm_lut:
            from repro.huffman.canonical import prewarm_lut_async
            prewarm_lut_async(hit)
        return hit
    telemetry.incr("huffman.fingerprint_cache.miss")
    lengths = code_lengths(rep, max_len)
    lengths.setflags(write=False)
    with _fp_lock:
        _fp_stats["misses"] += 1
        _fp_cache[key] = lengths
        _fp_cache.move_to_end(key)
        while len(_fp_cache) > _FP_CACHE_SIZE:
            _fp_cache.popitem(last=False)
            _fp_stats["evictions"] += 1
    return lengths


def clear_fingerprint_cache() -> None:
    """Drop the fingerprint LRU and reset its counters (tests)."""
    with _fp_lock:
        _fp_cache.clear()
        for k in _fp_stats:
            _fp_stats[k] = 0


def fingerprint_cache_stats() -> dict[str, int]:
    """Registry-shaped snapshot of the fingerprint cache counters."""
    with _fp_lock:
        return {**_fp_stats, "size": len(_fp_cache),
                "limit": _FP_CACHE_SIZE,
                "size_bytes": sum(len(k) + v.nbytes
                                  for k, v in _fp_cache.items())}


caches.register("huffman.fingerprint", fingerprint_cache_stats)
