"""Huffman tree construction with length limiting.

The codebook is built on the CPU (paper §VI-A: with G-Interp's concentrated
histograms, a GPU tree build is not worthwhile; cuSZ-i moves it host-side at
~200 us end-to-end). We build the optimal tree with a heap, then limit code
lengths to :data:`repro.huffman.canonical.MAX_CODE_LEN` so the decoder can
use a single flat lookup table — the standard trick of clamping and then
restoring the Kraft inequality by lengthening the cheapest (least frequent)
short codes.
"""

from __future__ import annotations

import heapq
from itertools import count

import numpy as np

from repro.common.errors import CodecError

__all__ = ["code_lengths"]


def _tree_lengths(freqs: np.ndarray) -> np.ndarray:
    """Unrestricted optimal code lengths for the nonzero-frequency symbols.

    Heap merge over parent pointers: each merge records only the two
    children's parent node, and leaf depths are recovered afterwards by
    one reverse sweep over the creation-ordered node array (a parent is
    always created after its children). Merge order — and therefore the
    resulting lengths — is identical to the classic subtree-list variant
    because the unique tiebreak counter decides every weight tie before
    payloads would ever be compared; this just drops the O(alphabet)
    list concatenation from every merge.
    """
    sym = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if sym.size == 0:
        return lengths
    if sym.size == 1:
        lengths[sym[0]] = 1  # a lone symbol still needs one bit per element
        return lengths
    m = sym.size
    tiebreak = count()
    heap: list[tuple[int, int, int]] = [
        (int(freqs[s]), next(tiebreak), i) for i, s in enumerate(sym)
    ]
    heapq.heapify(heap)
    parent = np.zeros(2 * m - 1, dtype=np.int64)
    next_id = m
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        parent[n1] = next_id
        parent[n2] = next_id
        heapq.heappush(heap, (w1 + w2, next(tiebreak), next_id))
        next_id += 1
    depth = np.zeros(next_id, dtype=np.int64)
    for node in range(next_id - 2, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths[sym] = depth[:m]
    return lengths


def code_lengths(freqs: np.ndarray, max_len: int) -> np.ndarray:
    """Length-limited Huffman code lengths per symbol (0 = unused symbol).

    Builds the optimal tree, clamps any over-long codes to ``max_len``, then
    repairs the Kraft sum by incrementing the lengths of the least frequent
    symbols until the code is realizable. Guaranteed to terminate whenever
    the alphabet fits in ``max_len`` bits.
    """
    freqs = np.asarray(freqs, dtype=np.int64).ravel()
    if np.any(freqs < 0):
        raise CodecError("negative frequency")
    n_used = int(np.count_nonzero(freqs))
    if n_used > (1 << max_len):
        raise CodecError(
            f"{n_used} symbols cannot fit in {max_len}-bit codes")
    lengths = _tree_lengths(freqs)
    if n_used == 0:
        return lengths
    over = lengths > max_len
    if not np.any(over):
        return lengths
    lengths[over] = max_len

    # Kraft sum in units of 2^-max_len; must come down to <= 2^max_len.
    unit = 1 << max_len
    kraft = int(np.sum((unit >> lengths[lengths > 0]).astype(np.int64)))
    if kraft > unit:
        # lengthen least-frequent symbols first; each +1 on a symbol of
        # length l releases 2^(max_len - l - 1) units.
        order = np.flatnonzero(freqs)
        order = order[np.argsort(freqs[order], kind="stable")]
        while kraft > unit:
            progressed = False
            for s in order:
                if lengths[s] < max_len:
                    kraft -= unit >> (lengths[s] + 1)
                    lengths[s] += 1
                    progressed = True
                    if kraft <= unit:
                        break
            if not progressed:  # pragma: no cover - guarded by n_used check
                raise CodecError("cannot satisfy Kraft inequality")
    return lengths
