"""Coarse-grained (chunked) canonical Huffman codec (paper §VI-A).

cuSZ / cuSZ-i encode quant-codes with a GPU Huffman pipeline: a histogram
kernel (with thread-private top-k caching in cuSZ-i), a CPU-side codebook
build (worthwhile because G-Interp concentrates the histogram into few
entries), and coarse-grained encoding where each thread block owns a fixed
chunk of symbols and writes an independently decodable bitstream.

The NumPy transcription keeps exactly that structure: chunks are encoded
into byte-aligned payloads via one vectorized bit scatter, and decoded by
stepping all chunks *simultaneously* — one decoded symbol per chunk per
step — which is the vectorized analogue of one-thread-block-per-chunk
decoding.
"""

from repro.huffman.histogram import histogram, topk_coverage
from repro.huffman.tree import code_lengths
from repro.huffman.canonical import (
    canonical_codebook,
    build_decode_table,
    MAX_CODE_LEN,
)
from repro.huffman.codec import (
    huffman_encode,
    huffman_decode,
    HuffmanStream,
)
from repro.huffman.static import (
    static_lengths,
    best_static_profile,
    STATIC_SPREADS,
)

__all__ = [
    "histogram",
    "topk_coverage",
    "code_lengths",
    "canonical_codebook",
    "build_decode_table",
    "MAX_CODE_LEN",
    "huffman_encode",
    "huffman_decode",
    "HuffmanStream",
    "static_lengths",
    "best_static_profile",
    "STATIC_SPREADS",
]
