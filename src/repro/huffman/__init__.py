"""Coarse-grained (chunked) canonical Huffman codec (paper §VI-A).

cuSZ / cuSZ-i encode quant-codes with a GPU Huffman pipeline: a histogram
kernel (with thread-private top-k caching in cuSZ-i), a CPU-side codebook
build (worthwhile because G-Interp concentrates the histogram into few
entries), and coarse-grained encoding where each thread block owns a fixed
chunk of symbols and writes an independently decodable bitstream.

The NumPy transcription keeps exactly that structure: chunks are encoded
into byte-aligned payloads via one vectorized variable-length bit scatter
(:func:`repro.common.bitpack.pack_varbits64` — a 64-bit word scatter-OR
driven by a packed code/length pair gather), and decoded by stepping all
chunks *simultaneously* — each batched advance probes a multi-symbol
lookup table (:func:`repro.huffman.canonical.build_lut_tables`) that
emits every complete codeword in the next ``LUT_PROBE_BITS`` bits —
which is the vectorized analogue of one-thread-block-per-chunk decoding.
"""

from repro.huffman.histogram import histogram, topk_coverage
from repro.huffman.tree import (code_lengths, fingerprint_code_lengths,
                                histogram_fingerprint,
                                clear_fingerprint_cache,
                                fingerprint_cache_stats)
from repro.huffman.canonical import (
    canonical_codebook,
    build_decode_table,
    build_lut_tables,
    warm_lengths,
    warm_tables,
    prewarm_lut_async,
    drain_lut_prewarm,
    MAX_CODE_LEN,
    LUT_PROBE_BITS,
)
from repro.huffman.codec import (
    huffman_encode,
    huffman_decode,
    HuffmanStream,
    DECODE_ENGINES,
    ENCODE_ENGINES,
    DEFAULT_CHUNK,
)
from repro.huffman.static import (
    static_lengths,
    best_static_profile,
    prewarm_static,
    STATIC_SPREADS,
)

__all__ = [
    "histogram",
    "topk_coverage",
    "code_lengths",
    "fingerprint_code_lengths",
    "histogram_fingerprint",
    "clear_fingerprint_cache",
    "fingerprint_cache_stats",
    "prewarm_lut_async",
    "drain_lut_prewarm",
    "canonical_codebook",
    "build_decode_table",
    "build_lut_tables",
    "warm_lengths",
    "warm_tables",
    "MAX_CODE_LEN",
    "LUT_PROBE_BITS",
    "huffman_encode",
    "huffman_decode",
    "HuffmanStream",
    "DECODE_ENGINES",
    "ENCODE_ENGINES",
    "DEFAULT_CHUNK",
    "static_lengths",
    "best_static_profile",
    "prewarm_static",
    "STATIC_SPREADS",
]
