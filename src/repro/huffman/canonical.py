"""Canonical code assignment and the flat decode table.

Canonical Huffman codes are fully determined by the per-symbol code
*lengths*, so only the length array travels in the compressed stream. The
decoder expands it into a ``2**MAX_CODE_LEN``-entry lookup table mapping any
window of ``MAX_CODE_LEN`` bits to ``(symbol, code length)`` — one gather
per decoded symbol, which is what makes the all-chunks-at-once decode loop
in :mod:`repro.huffman.codec` fast.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CodecError
from repro.common.scan import concat_ranges

__all__ = ["canonical_codebook", "build_decode_table", "MAX_CODE_LEN"]

#: Single flat-table decode requires bounded code lengths; 16 bits keeps the
#: table at 64 Ki entries while supporting the 1024-symbol quant alphabet.
MAX_CODE_LEN = 16


def canonical_codebook(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given per-symbol lengths.

    Returns a uint32 array of codewords (valid only where ``lengths > 0``).
    Codes are assigned shortest-first, ties broken by symbol index — the
    canonical convention, reproducible on both sides from lengths alone.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    if lengths.size and int(lengths.max()) > MAX_CODE_LEN:
        raise CodecError(f"code length exceeds {MAX_CODE_LEN}")
    codes = np.zeros(lengths.size, dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for s in order:
        ln = int(lengths[s])
        code <<= (ln - prev_len)
        codes[s] = code
        code += 1
        prev_len = ln
    if code > (1 << prev_len):
        raise CodecError("length array violates the Kraft inequality")
    return codes


def build_decode_table(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand code lengths into the flat decode table.

    Returns ``(symbols, lens)``: two ``2**MAX_CODE_LEN`` arrays such that
    for any bit window ``w`` starting at a codeword boundary,
    ``symbols[w]`` is the decoded symbol and ``lens[w]`` how many bits to
    consume. Table slots not reachable from any codeword keep length 0 so a
    corrupted stream is detected instead of looping forever.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    codes = canonical_codebook(lengths)
    size = 1 << MAX_CODE_LEN
    symbols = np.zeros(size, dtype=np.uint32)
    lens = np.zeros(size, dtype=np.uint8)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return symbols, lens
    shifts = MAX_CODE_LEN - lengths[used]
    starts = (codes[used].astype(np.int64) << shifts)
    counts = (np.int64(1) << shifts)
    # scatter each codeword across its table span
    idx = np.repeat(starts, counts) + concat_ranges(counts)
    symbols[idx] = np.repeat(used.astype(np.uint32), counts)
    lens[idx] = np.repeat(lengths[used].astype(np.uint8), counts)
    return symbols, lens

