"""Canonical code assignment and the table-driven decode surfaces.

Canonical Huffman codes are fully determined by the per-symbol code
*lengths*, so only the length array travels in the compressed stream. The
decoder expands it into two lookup surfaces:

* the **flat table** — ``2**MAX_CODE_LEN`` entries mapping any window of
  ``MAX_CODE_LEN`` bits to ``(symbol, code length)``; one gather per
  decoded symbol, used as the rare-path fallback;
* the **multi-symbol LUT** (:func:`build_lut_tables`) — ``2**K`` entries
  (``K = LUT_PROBE_BITS``) mapping the next ``K`` bits to *every complete
  codeword inside the probe*: ``(symbols[:count], cumulative bits)``.
  One gather decodes up to ``K`` symbols, which is what lets the
  chunk-parallel decode loop in :mod:`repro.huffman.codec` consume tens
  of bits per 64-bit window instead of one codeword per table lookup.

All three surfaces are pure functions of the length array, and static
codebooks (:mod:`repro.huffman.static`) reuse the same handful of length
vectors across every chunk-stream of a run, so each is memoized in an LRU
cache keyed on the length bytes. The decode-table and LUT caches are
additionally **byte-budgeted** (their entries are 100s of KiB each;
count-based eviction alone let the table cache grow unbounded in
multi-field runs). Cached arrays are returned read-only so one caller
cannot corrupt another's view.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

import numpy as np

from repro import telemetry
from repro.telemetry import caches
from repro.common.errors import CodecError
from repro.common.scan import concat_ranges

__all__ = ["canonical_codebook", "build_decode_table", "build_lut_tables",
           "MAX_CODE_LEN", "LUT_PROBE_BITS",
           "clear_codebook_caches", "codebook_cache_stats",
           "warm_lengths", "warm_tables",
           "prewarm_lut_async", "drain_lut_prewarm"]

#: Single flat-table decode requires bounded code lengths; 16 bits keeps the
#: table at 64 Ki entries while supporting the 1024-symbol quant alphabet.
MAX_CODE_LEN = 16

#: Probe width ``K`` of the multi-symbol LUT: each decode gather reads the
#: next ``K`` payload bits and emits every complete codeword inside them.
#: The default is ``MAX_CODE_LEN`` itself: a full-width probe can never
#: meet a codeword it cannot finish, so the decode loop drops its
#: rare-path fallback branch entirely (see :mod:`repro.huffman.codec`),
#: at the price of a larger build (~3 MiB, ~5 ms, amortized by the LUT
#: cache and worker warm shipping). Narrower probes trade decode speed
#: for build cost/memory; see docs/PERFORMANCE.md for the measured table.
LUT_PROBE_BITS = int(os.environ.get("REPRO_HUFFMAN_PROBE_BITS", "16"))

#: distinct length vectors kept per cache; static families have < 10 members
#: and dynamic codebooks are per-field, so a few dozen covers real runs
_CACHE_SIZE = 64

#: byte budgets for the expanded decode surfaces (the codebook cache stays
#: count-bounded: its entries are a few KiB). A flat table is ~320 KiB and
#: a full-width probe LUT ~3 MiB, so these budgets hold the whole static
#: family plus several dynamic codebooks — enough for real multi-field
#: runs — while bounding worst-case growth.
TABLE_CACHE_BYTES = 12 << 20
LUT_CACHE_BYTES = 24 << 20

_cache_lock = threading.Lock()
_codebook_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
_table_cache: OrderedDict[bytes, tuple[np.ndarray, np.ndarray]] = \
    OrderedDict()
_lut_cache: OrderedDict[tuple, tuple] = OrderedDict()
_cache_stats = {"codebook_hits": 0, "codebook_misses": 0,
                "codebook_evictions": 0,
                "table_hits": 0, "table_misses": 0, "table_evictions": 0,
                "lut_hits": 0, "lut_misses": 0, "lut_evictions": 0}
#: running byte totals of the byte-budgeted caches (values only)
_cache_bytes = {"table": 0, "lut": 0}

_BYTE_BUDGETS = {"table": TABLE_CACHE_BYTES, "lut": LUT_CACHE_BYTES}


def clear_codebook_caches() -> None:
    """Drop all three LRU caches (tests; long-lived processes never
    need to)."""
    with _cache_lock:
        _codebook_cache.clear()
        _table_cache.clear()
        _lut_cache.clear()
        for k in _cache_stats:
            _cache_stats[k] = 0
        for k in _cache_bytes:
            _cache_bytes[k] = 0


def codebook_cache_stats() -> dict[str, int]:
    """Snapshot of hit/miss counters for all three caches."""
    with _cache_lock:
        return dict(_cache_stats)


def _entry_nbytes(value) -> int:
    if isinstance(value, np.ndarray):
        return value.nbytes
    return sum(v.nbytes for v in value if isinstance(v, np.ndarray))


def _cache_get(cache: OrderedDict, key, kind: str):
    with _cache_lock:
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            _cache_stats[f"{kind}_hits"] += 1
            telemetry.incr(f"huffman.{kind}_cache.hit")
            return hit
        _cache_stats[f"{kind}_misses"] += 1
        telemetry.incr(f"huffman.{kind}_cache.miss")
        return None


def _cache_put(cache: OrderedDict, key, value, kind: str) -> None:
    """Insert under the count cap and, where declared, the byte budget.

    Byte-budgeted kinds evict least-recently-used entries until the new
    total fits — the eviction pressure ``repro doctor`` watches via the
    registry's ``size_bytes`` / ``byte_limit`` gauges.
    """
    budget = _BYTE_BUDGETS.get(kind)
    with _cache_lock:
        cache[key] = value
        cache.move_to_end(key)
        if budget is not None:
            _cache_bytes[kind] += _entry_nbytes(value)
        while len(cache) > _CACHE_SIZE or (
                budget is not None and _cache_bytes[kind] > budget
                and len(cache) > 1):
            _k, evicted = cache.popitem(last=False)
            if budget is not None:
                _cache_bytes[kind] -= _entry_nbytes(evicted)
            _cache_stats[f"{kind}_evictions"] += 1


def _registry_stats(cache: OrderedDict, kind: str,
                    nbytes) -> dict[str, int]:
    with _cache_lock:
        stats = {"hits": _cache_stats[f"{kind}_hits"],
                 "misses": _cache_stats[f"{kind}_misses"],
                 "evictions": _cache_stats[f"{kind}_evictions"],
                 "size": len(cache), "limit": _CACHE_SIZE,
                 "size_bytes": sum(_key_nbytes(k) + nbytes(v)
                                   for k, v in cache.items())}
        budget = _BYTE_BUDGETS.get(kind)
        if budget is not None:
            stats["byte_limit"] = budget
        return stats


def _key_nbytes(key) -> int:
    if isinstance(key, bytes):
        return len(key)
    return sum(len(k) if isinstance(k, bytes) else 8 for k in key)


caches.register(
    "huffman.codebook",
    lambda: _registry_stats(_codebook_cache, "codebook",
                            lambda v: v.nbytes))
caches.register(
    "huffman.table",
    lambda: _registry_stats(_table_cache, "table",
                            lambda v: v[0].nbytes + v[1].nbytes))
caches.register(
    "huffman.lut",
    lambda: _registry_stats(_lut_cache, "lut", _entry_nbytes))


def _length_key(lengths: np.ndarray) -> bytes:
    """Cache key: the raw length bytes (validated to fit uint8 first)."""
    if lengths.size and (int(lengths.max()) > MAX_CODE_LEN
                         or int(lengths.min()) < 0):
        raise CodecError(f"code length outside [0, {MAX_CODE_LEN}]")
    return lengths.astype(np.uint8).tobytes()


def canonical_codebook(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given per-symbol lengths.

    Returns a read-only uint32 array of codewords (valid only where
    ``lengths > 0``). Codes are assigned shortest-first, ties broken by
    symbol index — the canonical convention, reproducible on both sides
    from lengths alone. Results are memoized per length vector.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    key = _length_key(lengths)
    cached = _cache_get(_codebook_cache, key, "codebook")
    if cached is not None:
        return cached
    codes = _canonical_codebook_uncached(lengths)
    codes.setflags(write=False)
    _cache_put(_codebook_cache, key, codes, "codebook")
    return codes


def _canonical_codebook_uncached(lengths: np.ndarray) -> np.ndarray:
    codes = np.zeros(lengths.size, dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for s in order:
        ln = int(lengths[s])
        code <<= (ln - prev_len)
        codes[s] = code
        code += 1
        prev_len = ln
    if code > (1 << prev_len):
        raise CodecError("length array violates the Kraft inequality")
    return codes


def build_decode_table(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand code lengths into the flat decode table.

    Returns ``(symbols, lens)``: two read-only ``2**MAX_CODE_LEN`` arrays
    such that for any bit window ``w`` starting at a codeword boundary,
    ``symbols[w]`` is the decoded symbol and ``lens[w]`` how many bits to
    consume. Table slots not reachable from any codeword keep length 0 so a
    corrupted stream is detected instead of looping forever. The 64 Ki
    tables are memoized per length vector — static codebooks decode every
    chunk-stream of a run through the same cached pair.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    key = _length_key(lengths)
    cached = _cache_get(_table_cache, key, "table")
    if cached is not None:
        return cached
    codes = canonical_codebook(lengths)
    size = 1 << MAX_CODE_LEN
    symbols = np.zeros(size, dtype=np.uint32)
    lens = np.zeros(size, dtype=np.uint8)
    used = np.flatnonzero(lengths)
    if used.size:
        shifts = MAX_CODE_LEN - lengths[used]
        starts = (codes[used].astype(np.int64) << shifts)
        counts = (np.int64(1) << shifts)
        # scatter each codeword across its table span
        idx = np.repeat(starts, counts) + concat_ranges(counts)
        symbols[idx] = np.repeat(used.astype(np.uint32), counts)
        lens[idx] = np.repeat(lengths[used].astype(np.uint8), counts)
    symbols.setflags(write=False)
    lens.setflags(write=False)
    _cache_put(_table_cache, key, (symbols, lens), "table")
    return symbols, lens


def build_lut_tables(lengths: np.ndarray,
                     probe_bits: int | None = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand code lengths into the multi-symbol probe LUT.

    Returns ``(count, cum_bits, syms)``, all read-only, indexed by the
    next ``probe_bits`` payload bits (MSB-first):

    * ``count[w]`` — how many *complete* codewords the probe window ``w``
      contains (0 means the first codeword overruns the probe: take the
      flat-table fallback);
    * ``syms[w, :count[w]]`` — the decoded symbols, in stream order;
    * ``cum_bits[w, j]`` — total bits consumed after emitting the first
      ``j`` symbols, with ``cum_bits[w, 0] == 0``: the decode loop
      advances its bit cursor by ``cum_bits[w, emit]`` without masking
      out zero-emit lanes, and any prefix is directly addressable when
      the chunk ends mid-entry.

    Construction simulates chained flat-table decodes per row, vectorized
    across all ``2**probe_bits`` rows at once. A codeword only counts
    when it fits *entirely* inside the probe's real bits — the low-order
    zero padding introduced by the row shift is never interpreted — so a
    LUT probe can never mis-decode across the probe boundary.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    if probe_bits is None:
        probe_bits = LUT_PROBE_BITS
    if not 1 <= probe_bits <= MAX_CODE_LEN:
        raise CodecError(
            f"probe width {probe_bits} outside [1, {MAX_CODE_LEN}]")
    key = (_length_key(lengths), int(probe_bits))
    cached = _cache_get(_lut_cache, key, "lut")
    if cached is not None:
        return cached
    table_syms, table_lens = build_decode_table(lengths)
    size = 1 << probe_bits
    mask = np.int32(size - 1)
    up = MAX_CODE_LEN - probe_bits
    count = np.zeros(size, dtype=np.uint8)
    cum = np.zeros((size, probe_bits + 1), dtype=np.uint8)
    # uint16 symbol slots halve the dominant LUT plane whenever the
    # alphabet allows it (a MAX_CODE_LEN=16 code admits at most 2**16
    # codewords, so only sparse oversized alphabets need uint32)
    sym_dtype = np.uint16 if lengths.size <= (1 << 16) else np.uint32
    syms = np.zeros((size, probe_bits), dtype=sym_dtype)
    lens32 = table_lens.astype(np.int32)
    # rows drop out of `live` once their next codeword overruns the
    # probe, so iteration j only touches rows with >= j+1 symbols; with
    # int32 row state the whole build runs at a fraction of the naive
    # all-rows-every-iteration cost (it is the cold-decode hot path)
    live = np.arange(size, dtype=np.int32)
    consumed = np.zeros(size, dtype=np.int32)
    for j in range(probe_bits):
        idx = ((live << consumed) & mask) << up
        ln = lens32[idx]
        fit = (ln > 0) & (consumed + ln <= probe_bits)
        live = live[fit]
        if live.size == 0:
            break
        consumed = consumed[fit] + ln[fit]
        syms[live, j] = table_syms[idx[fit]]
        cum[live, j + 1] = consumed
        count[live] += 1
    smax = max(int(count.max()), 1)
    cum = np.ascontiguousarray(cum[:, :smax + 1])
    syms = np.ascontiguousarray(syms[:, :smax])
    for arr in (count, cum, syms):
        arr.setflags(write=False)
    entry = (count, cum, syms)
    _cache_put(_lut_cache, key, entry, "lut")
    return entry


# -- encode-side LUT prewarm -------------------------------------------------
#
# A recurring codebook (the encode fingerprint cache hitting) predicts a
# near-future decode of the same codebook; building its ~3 MiB probe LUT
# *now*, off-thread, means that warm decode never pays the build wall.

_prewarm_lock = threading.Lock()
_prewarm_threads: dict[tuple, threading.Thread] = {}


def prewarm_lut_async(lengths: np.ndarray) -> bool:
    """Build the probe LUT for ``lengths`` on a daemon thread if it is
    not already cached or in flight. Returns whether a build started.

    The build is pure (read-only inputs, idempotent cache insert), so a
    rare race with a foreground :func:`build_lut_tables` only costs one
    redundant build, never a wrong table.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    try:
        key = (_length_key(lengths), int(LUT_PROBE_BITS))
    except CodecError:
        return False
    with _cache_lock:
        if key in _lut_cache:
            return False
    with _prewarm_lock:
        stale = _prewarm_threads.get(key)
        if stale is not None and stale.is_alive():
            return False

        def _build():
            try:
                build_lut_tables(lengths)
            except CodecError:  # pragma: no cover - key pre-validated
                pass
            finally:
                with _prewarm_lock:
                    _prewarm_threads.pop(key, None)

        thread = threading.Thread(target=_build, daemon=True,
                                  name="repro-lut-prewarm")
        _prewarm_threads[key] = thread
    thread.start()
    telemetry.incr("huffman.lut_prewarm")
    return True


def drain_lut_prewarm() -> int:
    """Join every in-flight prewarm build (tests and the bench need a
    deterministic cold/warm boundary). Returns how many were joined."""
    with _prewarm_lock:
        threads = list(_prewarm_threads.values())
    for t in threads:
        t.join()
    return len(threads)


def warm_lengths(limit: int = 8) -> list[bytes]:
    """Raw length vectors (uint8 bytes) of the most-recently-used
    codebooks, newest first — the parent ships these to persistent shm
    workers so their decode tables and LUTs are built before the first
    pooled request instead of on it."""
    with _cache_lock:
        keys = list(_codebook_cache.keys())
    return keys[::-1][:max(0, int(limit))]


def warm_tables(length_blobs) -> int:
    """Prebuild the flat table and probe LUT for each raw length vector
    (as produced by :func:`warm_lengths`). Invalid blobs are skipped —
    a stale warm hint must never fail a worker. Returns how many
    codebooks were warmed."""
    warmed = 0
    for blob in length_blobs:
        try:
            lengths = np.frombuffer(blob, dtype=np.uint8).astype(np.int64)
            if lengths.size == 0:
                continue
            build_decode_table(lengths)
            build_lut_tables(lengths)
            warmed += 1
        except (CodecError, ValueError):
            continue
    return warmed

