"""Canonical code assignment and the flat decode table.

Canonical Huffman codes are fully determined by the per-symbol code
*lengths*, so only the length array travels in the compressed stream. The
decoder expands it into a ``2**MAX_CODE_LEN``-entry lookup table mapping any
window of ``MAX_CODE_LEN`` bits to ``(symbol, code length)`` — one gather
per decoded symbol, which is what makes the all-chunks-at-once decode loop
in :mod:`repro.huffman.codec` fast.

Both the codebook and the decode table are pure functions of the length
array, and static codebooks (:mod:`repro.huffman.static`) reuse the same
handful of length vectors across every chunk-stream of a run, so both are
memoized in small LRU caches keyed on the length bytes. Cached arrays are
returned read-only so one caller cannot corrupt another's view.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro import telemetry
from repro.telemetry import caches
from repro.common.errors import CodecError
from repro.common.scan import concat_ranges

__all__ = ["canonical_codebook", "build_decode_table", "MAX_CODE_LEN",
           "clear_codebook_caches", "codebook_cache_stats"]

#: Single flat-table decode requires bounded code lengths; 16 bits keeps the
#: table at 64 Ki entries while supporting the 1024-symbol quant alphabet.
MAX_CODE_LEN = 16

#: distinct length vectors kept per cache; static families have < 10 members
#: and dynamic codebooks are per-field, so a few dozen covers real runs
_CACHE_SIZE = 64

_cache_lock = threading.Lock()
_codebook_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
_table_cache: OrderedDict[bytes, tuple[np.ndarray, np.ndarray]] = \
    OrderedDict()
_cache_stats = {"codebook_hits": 0, "codebook_misses": 0,
                "codebook_evictions": 0,
                "table_hits": 0, "table_misses": 0, "table_evictions": 0}


def clear_codebook_caches() -> None:
    """Drop both LRU caches (tests; long-lived processes never need to)."""
    with _cache_lock:
        _codebook_cache.clear()
        _table_cache.clear()
        for k in _cache_stats:
            _cache_stats[k] = 0


def codebook_cache_stats() -> dict[str, int]:
    """Snapshot of hit/miss counters for both caches."""
    with _cache_lock:
        return dict(_cache_stats)


def _cache_get(cache: OrderedDict, key: bytes, kind: str):
    with _cache_lock:
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            _cache_stats[f"{kind}_hits"] += 1
            telemetry.incr(f"huffman.{kind}_cache.hit")
            return hit
        _cache_stats[f"{kind}_misses"] += 1
        telemetry.incr(f"huffman.{kind}_cache.miss")
        return None


def _cache_put(cache: OrderedDict, key: bytes, value, kind: str) -> None:
    with _cache_lock:
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > _CACHE_SIZE:
            cache.popitem(last=False)
            _cache_stats[f"{kind}_evictions"] += 1


def _registry_stats(cache: OrderedDict, kind: str,
                    nbytes) -> dict[str, int]:
    with _cache_lock:
        return {"hits": _cache_stats[f"{kind}_hits"],
                "misses": _cache_stats[f"{kind}_misses"],
                "evictions": _cache_stats[f"{kind}_evictions"],
                "size": len(cache), "limit": _CACHE_SIZE,
                "size_bytes": sum(len(k) + nbytes(v)
                                  for k, v in cache.items())}


caches.register(
    "huffman.codebook",
    lambda: _registry_stats(_codebook_cache, "codebook",
                            lambda v: v.nbytes))
caches.register(
    "huffman.table",
    lambda: _registry_stats(_table_cache, "table",
                            lambda v: v[0].nbytes + v[1].nbytes))


def _length_key(lengths: np.ndarray) -> bytes:
    """Cache key: the raw length bytes (validated to fit uint8 first)."""
    if lengths.size and (int(lengths.max()) > MAX_CODE_LEN
                         or int(lengths.min()) < 0):
        raise CodecError(f"code length outside [0, {MAX_CODE_LEN}]")
    return lengths.astype(np.uint8).tobytes()


def canonical_codebook(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given per-symbol lengths.

    Returns a read-only uint32 array of codewords (valid only where
    ``lengths > 0``). Codes are assigned shortest-first, ties broken by
    symbol index — the canonical convention, reproducible on both sides
    from lengths alone. Results are memoized per length vector.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    key = _length_key(lengths)
    cached = _cache_get(_codebook_cache, key, "codebook")
    if cached is not None:
        return cached
    codes = _canonical_codebook_uncached(lengths)
    codes.setflags(write=False)
    _cache_put(_codebook_cache, key, codes, "codebook")
    return codes


def _canonical_codebook_uncached(lengths: np.ndarray) -> np.ndarray:
    codes = np.zeros(lengths.size, dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for s in order:
        ln = int(lengths[s])
        code <<= (ln - prev_len)
        codes[s] = code
        code += 1
        prev_len = ln
    if code > (1 << prev_len):
        raise CodecError("length array violates the Kraft inequality")
    return codes


def build_decode_table(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand code lengths into the flat decode table.

    Returns ``(symbols, lens)``: two read-only ``2**MAX_CODE_LEN`` arrays
    such that for any bit window ``w`` starting at a codeword boundary,
    ``symbols[w]`` is the decoded symbol and ``lens[w]`` how many bits to
    consume. Table slots not reachable from any codeword keep length 0 so a
    corrupted stream is detected instead of looping forever. The 64 Ki
    tables are memoized per length vector — static codebooks decode every
    chunk-stream of a run through the same cached pair.
    """
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    key = _length_key(lengths)
    cached = _cache_get(_table_cache, key, "table")
    if cached is not None:
        return cached
    codes = canonical_codebook(lengths)
    size = 1 << MAX_CODE_LEN
    symbols = np.zeros(size, dtype=np.uint32)
    lens = np.zeros(size, dtype=np.uint8)
    used = np.flatnonzero(lengths)
    if used.size:
        shifts = MAX_CODE_LEN - lengths[used]
        starts = (codes[used].astype(np.int64) << shifts)
        counts = (np.int64(1) << shifts)
        # scatter each codeword across its table span
        idx = np.repeat(starts, counts) + concat_ranges(counts)
        symbols[idx] = np.repeat(used.astype(np.uint32), counts)
        lens[idx] = np.repeat(lengths[used].astype(np.uint8), counts)
    symbols.setflags(write=False)
    lens.setflags(write=False)
    _cache_put(_table_cache, key, (symbols, lens), "table")
    return symbols, lens

