"""Prebuilt (static) Huffman codebooks (paper §VI-A, ref [37]).

cuSZ-i moves the codebook build to the CPU; the paper notes the remaining
cost could be removed entirely by *prebuilding* Huffman trees. Quant-code
histograms of error-bounded predictors are overwhelmingly two-sided
geometric around the zero bin, so a family of prebuilt codebooks — one per
assumed spread — covers real streams well: encoding skips both the
histogram and the tree build, trading a few percent of ratio.

``static_lengths`` builds such a codebook; ``best_static_profile`` picks
the family member whose implied rate fits a (cheaply sampled) stream.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CodecError
from repro.huffman.canonical import (MAX_CODE_LEN, build_decode_table,
                                     build_lut_tables, canonical_codebook)
from repro.huffman.tree import code_lengths

__all__ = ["static_lengths", "best_static_profile", "prewarm_static",
           "STATIC_SPREADS"]

#: prebuilt family: assumed std-dev (in bins) of the quant-code spread
STATIC_SPREADS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0)

#: memoized static length vectors, keyed (alphabet, center, spread) —
#: the family is tiny and fully deterministic, and ``best_static_profile``
#: otherwise rebuilds every member's tree per encoded stream
_static_memo: dict[tuple[int, int, float], np.ndarray] = {}
_STATIC_MEMO_LIMIT = 64


def static_lengths(alphabet_size: int, center: int,
                   spread: float) -> np.ndarray:
    """Code lengths for a two-sided-geometric model around ``center``.

    Every symbol (including the outlier code 0) gets a nonzero length, so
    any stream over the alphabet is encodable. The model frequencies decay
    exponentially with distance from the center at scale ``spread``;
    probabilities are floored so tail codes stay within MAX_CODE_LEN.
    The result is memoized (read-only array) — the family is a pure
    function of its three scalars.
    """
    if not 0 <= center < alphabet_size:
        raise CodecError("center outside alphabet")
    if spread <= 0:
        raise CodecError("spread must be positive")
    key = (int(alphabet_size), int(center), float(spread))
    hit = _static_memo.get(key)
    if hit is not None:
        return hit
    sym = np.arange(alphabet_size)
    dist = np.abs(sym - center).astype(np.float64)
    weights = np.exp(-dist / spread)
    # floor keeps every code <= MAX_CODE_LEN for the alphabets we use
    floor = weights.max() / (1 << (MAX_CODE_LEN - 2))
    weights = np.maximum(weights, floor)
    freqs = np.maximum((weights * 1e9).astype(np.int64), 1)
    lengths = code_lengths(freqs, MAX_CODE_LEN)
    assert (lengths > 0).all()
    lengths.setflags(write=False)
    if len(_static_memo) < _STATIC_MEMO_LIMIT:
        _static_memo[key] = lengths
    return lengths


def prewarm_static(alphabet_size: int, center: int,
                   spreads=STATIC_SPREADS) -> int:
    """Build codebook, flat table, and probe LUT for every member of the
    static family — one call fills the caches a fresh process (or a
    freshly spawned pool worker) would otherwise fill one miss at a time
    on its first streams. Returns the number of codebooks warmed."""
    warmed = 0
    for spread in spreads:
        lengths = static_lengths(alphabet_size, center, spread)
        canonical_codebook(lengths)
        build_decode_table(lengths)
        build_lut_tables(lengths)
        warmed += 1
    return warmed


def best_static_profile(codes: np.ndarray, alphabet_size: int, center: int,
                        sample: int = 4096) -> float:
    """Pick the family spread minimizing the coded size of a sample."""
    codes = np.asarray(codes).ravel()
    if codes.size == 0:
        return STATIC_SPREADS[0]
    step = max(1, codes.size // sample)
    sampled = codes[::step]
    best = None
    for spread in STATIC_SPREADS:
        lengths = static_lengths(alphabet_size, center, spread)
        bits = int(lengths[sampled].sum())
        if best is None or bits < best[0]:
            best = (bits, spread)
    return best[1]
