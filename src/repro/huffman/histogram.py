"""Quant-code histogram (the first Huffman stage, paper §VI-A).

On the GPU, cuSZ-i accelerates this stage by caching the counts of the
center top-k quant-codes in thread-private registers, because G-Interp
concentrates nearly all codes into a tiny band around the zero bin. The
counting result is identical either way; :func:`topk_coverage` measures how
concentrated a code stream is, which both justifies the optimization and
feeds the GPU performance model's histogram-kernel cost.

The CPU transcription exploits the same concentration. Counting is a
single ``bincount`` pass — range validation falls out of the count result
(negatives raise inside ``bincount``, an oversized count vector means an
over-range symbol), so the two extra ``min``/``max`` sweeps the old
implementation paid per stream are gone. For alphabets much larger than
the touched code band (:data:`SPARSE_ALPHABET` and up) a two-level
coarse/refine pass takes over: a coarse bincount over
:data:`COARSE_BUCKET`-wide buckets finds the touched range, and the
refine bincount allocates counts only for that range instead of the full
alphabet.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CodecError

__all__ = ["histogram", "topk_coverage", "SPARSE_ALPHABET",
           "COARSE_BUCKET"]

#: alphabets at least this large take the two-level coarse/refine path —
#: below it a direct bincount's count vector is too small to matter
SPARSE_ALPHABET = 1 << 16

#: symbols per coarse bucket in the two-level path (a power of two so the
#: coarse key is one shift)
COARSE_BUCKET = 1 << 12

_COARSE_SHIFT = COARSE_BUCKET.bit_length() - 1


def _bincount_checked(codes: np.ndarray, minlength: int) -> np.ndarray:
    """``np.bincount`` with the domain errors mapped to CodecError."""
    try:
        return np.bincount(codes, minlength=minlength)
    except (ValueError, TypeError) as exc:
        # negative symbols (or a non-integer dtype) surface here
        raise CodecError("symbol outside alphabet") from exc


def histogram(codes: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Exact counts of each symbol in ``[0, alphabet_size)``.

    Raises if any code falls outside the alphabet — a corrupted stream must
    fail loudly rather than silently skew the codebook.
    """
    if alphabet_size < 1:
        raise CodecError("alphabet size must be >= 1")
    codes = np.asarray(codes).ravel()
    if codes.size == 0:
        return np.zeros(alphabet_size, dtype=np.int64)
    if codes.dtype.kind not in "iu":
        raise CodecError("symbol outside alphabet")
    if alphabet_size >= SPARSE_ALPHABET:
        counts = _sparse_histogram(codes, alphabet_size)
        if counts is not None:
            return counts
    counts = _bincount_checked(codes, alphabet_size)
    if counts.size > alphabet_size:
        raise CodecError("symbol outside alphabet")
    return counts.astype(np.int64, copy=False)


def _sparse_histogram(codes: np.ndarray,
                      alphabet_size: int) -> np.ndarray | None:
    """Two-level coarse/refine count for concentrated wide-alphabet
    streams; ``None`` when the touched range is too wide to pay off."""
    coarse = _bincount_checked(codes >> _COARSE_SHIFT, 0)
    if coarse[-1] == 0:  # pragma: no cover - bincount trims trailing zeros
        coarse = np.trim_zeros(coarse, "b")
    lo_b = int(np.flatnonzero(coarse)[0])
    hi_b = coarse.size - 1
    if hi_b > (alphabet_size - 1) >> _COARSE_SHIFT:
        raise CodecError("symbol outside alphabet")
    span = (hi_b - lo_b + 1) << _COARSE_SHIFT
    if span * 4 > alphabet_size:
        return None            # dense stream: direct bincount is cheaper
    base = lo_b << _COARSE_SHIFT
    refined = _bincount_checked(codes.astype(np.int64) - base, span)
    if base + refined.size > alphabet_size:
        raise CodecError("symbol outside alphabet")
    counts = np.zeros(alphabet_size, dtype=np.int64)
    counts[base:base + refined.size] = refined
    return counts


def topk_coverage(counts: np.ndarray, center: int, k: int) -> float:
    """Fraction of all symbols covered by the ``k`` codes centered on
    ``center`` (the zero-error bin).

    cuSZ-i's register-private histogram caching pays off when this fraction
    is close to 1; with ``k`` falling back to 1 it still helps for highly
    compressible data (§VI-A). The GPU performance model uses this value to
    scale the histogram kernel's shared-memory traffic.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return 1.0
    if k < 1:
        raise CodecError("k must be >= 1")
    half = k // 2
    lo = max(0, center - half)
    hi = min(counts.size, lo + k)
    return float(counts[lo:hi].sum() / total)
