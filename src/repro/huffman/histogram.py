"""Quant-code histogram (the first Huffman stage, paper §VI-A).

On the GPU, cuSZ-i accelerates this stage by caching the counts of the
center top-k quant-codes in thread-private registers, because G-Interp
concentrates nearly all codes into a tiny band around the zero bin. The
counting result is identical either way; :func:`topk_coverage` measures how
concentrated a code stream is, which both justifies the optimization and
feeds the GPU performance model's histogram-kernel cost.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CodecError

__all__ = ["histogram", "topk_coverage"]


def histogram(codes: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Exact counts of each symbol in ``[0, alphabet_size)``.

    Raises if any code falls outside the alphabet — a corrupted stream must
    fail loudly rather than silently skew the codebook.
    """
    if alphabet_size < 1:
        raise CodecError("alphabet size must be >= 1")
    codes = np.asarray(codes).ravel()
    if codes.size == 0:
        return np.zeros(alphabet_size, dtype=np.int64)
    if codes.min() < 0 or codes.max() >= alphabet_size:
        raise CodecError("symbol outside alphabet")
    return np.bincount(codes, minlength=alphabet_size).astype(np.int64)


def topk_coverage(counts: np.ndarray, center: int, k: int) -> float:
    """Fraction of all symbols covered by the ``k`` codes centered on
    ``center`` (the zero-error bin).

    cuSZ-i's register-private histogram caching pays off when this fraction
    is close to 1; with ``k`` falling back to 1 it still helps for highly
    compressible data (§VI-A). The GPU performance model uses this value to
    scale the histogram kernel's shared-memory traffic.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return 1.0
    if k < 1:
        raise CodecError("k must be >= 1")
    half = k // 2
    lo = max(0, center - half)
    hi = min(counts.size, lo + k)
    return float(counts[lo:hi].sum() / total)
