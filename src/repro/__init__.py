"""repro — a pure-Python reproduction of cuSZ-i (SC 2024).

cuSZ-i is a GPU error-bounded lossy compressor for scientific data built
on an optimized multi-level interpolation predictor (G-Interp), a tuned
coarse-grained Huffman stage, and an optional de-redundancy pass. This
package reimplements the full system and every baseline/substrate its
evaluation depends on, in vectorized NumPy.

Quick start::

    import numpy as np
    from repro import compress, decompress

    field = np.fromfile("data.f32", dtype=np.float32).reshape(256, 256, 256)
    blob = compress(field, codec="cuszi", eb=1e-3, mode="rel")
    recon = decompress(blob)
    assert np.abs(recon - field).max() <= 1e-3 * (field.max() - field.min())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from __future__ import annotations

import numpy as np

from repro.registry import available, decompress_any, get_compressor
from repro.common.metrics import (bit_rate, compression_ratio,
                                  max_abs_error, nrmse, psnr)

__version__ = "1.0.0"

__all__ = ["compress", "decompress", "get_compressor", "available",
           "psnr", "nrmse", "max_abs_error", "compression_ratio",
           "bit_rate", "__version__"]


def compress(data: np.ndarray, codec: str = "cuszi", **kwargs) -> bytes:
    """Compress a 1-3D float field with a registered compressor.

    Keyword arguments are forwarded to the codec (typically ``eb``,
    ``mode``, ``lossless``; ``rate`` for cuZFP). Returns a self-describing
    blob that :func:`decompress` can decode without further parameters.
    """
    return get_compressor(codec, **kwargs).compress(data)


def decompress(blob: bytes) -> np.ndarray:
    """Decompress a blob produced by any registered compressor."""
    return decompress_any(blob)
