#!/usr/bin/env python
"""In-situ slab streaming: compress a snapshot while it is being produced.

Simulations emit fields plane-by-plane; waiting for the full array doubles
the memory footprint the compressor was supposed to save. This example
feeds a combustion (S3D) field to :class:`repro.streaming.SlabWriter`
eight planes at a time — as an in-situ adaptor would — then demonstrates
random access: pulling one slab back out of the stream without touching
the rest (a post-analysis reading one flame cross-section).

Run:  python examples/insitu_streaming.py
"""

import numpy as np

from repro.datasets import load_field
from repro.streaming import SlabReader, SlabWriter


def main() -> None:
    field = load_field("s3d", "temperature")
    value_range = float(field.max() - field.min())
    print(f"producing s3d/temperature {field.shape} in 8-plane slabs")

    writer = SlabWriter(codec="cuszi", eb=1e-3, mode="rel",
                        value_range=value_range, lossless="gle")
    produced = 0
    for start in range(0, field.shape[0], 8):
        slab = np.ascontiguousarray(field[start:start + 8])
        nbytes = writer.append(slab)
        produced += slab.nbytes
        print(f"  slab {writer.n_slabs - 1:2d}: {slab.nbytes / 1e3:7.0f} kB"
              f" -> {nbytes / 1e3:6.1f} kB")
    stream = writer.finish()
    print(f"stream: {produced / 1e6:.1f} MB -> {len(stream) / 1e6:.2f} MB "
          f"(ratio {produced / len(stream):.1f}x)\n")

    reader = SlabReader(stream)
    mid = len(reader) // 2
    slab = reader.read_slab(mid)
    ref = field[mid * 8:mid * 8 + slab.shape[0]]
    err = np.abs(slab.astype(np.float64) - ref.astype(np.float64)).max()
    print(f"random access: slab {mid} of {len(reader)} decoded alone, "
          f"max error {err:.3e} (bound {1e-3 * value_range:.3e})")
    assert err <= 1e-3 * value_range * 1.000001

    full = reader.read_all()
    assert full.shape == field.shape
    print("full reassembly matches the original shape.")


if __name__ == "__main__":
    main()
