#!/usr/bin/env python
"""Inside G-Interp: what the profiling auto-tuner decides and why.

Walks through the §V-C machinery on an anisotropic field: the Eq. 1 alpha
schedule, per-axis cubic-spline selection, least-smooth-first axis
ordering — then shows the effect of each knob on the final ratio by
overriding it (the ablation workflow).

Run:  python examples/tuning_deep_dive.py
"""

import numpy as np

from repro.core.ginterp import autotune, alpha_from_eb
from repro.core.ginterp.splines import SPLINE_NAMES
from repro.core.pipeline import CuSZi
from repro.datasets.synthetic import spectral_field


def make_anisotropic_field() -> np.ndarray:
    """Smooth along z, rough along x — like a layered geophysical model."""
    base = spectral_field((96, 96, 96), slope=5.0, kmax_frac=0.2, seed=11)
    ripple = 0.3 * np.sin(np.arange(96) * 2.2)
    return (base + ripple[None, None, :]).astype(np.float32)


def main() -> None:
    field = make_anisotropic_field()
    rng = float(field.max() - field.min())

    print("== profiling kernel (paper §V-C) ==")
    for rel_eb in (1e-2, 1e-3, 1e-4):
        report = autotune(field, rel_eb * rng)
        print(f"rel eb {rel_eb:.0e}: alpha={report.alpha:.3f} "
              f"(Eq.1 gives {alpha_from_eb(rel_eb):.3f}), "
              f"axis order {report.axis_order} "
              f"(profiled errors "
              f"{tuple(round(e, 1) for e in report.profiled_errors)}), "
              f"cubics {[SPLINE_NAMES[v] for v in report.cubic_variant]}")

    print("\n== what each design choice buys (CR at rel eb 1e-3) ==")
    variants = {
        "full pipeline": {},
        "no level-wise eb (alpha=1)": {"alpha": 1.0},
        "no auto-tuning": {"tune": False},
        "no shared-window confinement": {"use_windows": False},
        "Huffman only (no GLE)": {"lossless": "none"},
    }
    for label, overrides in variants.items():
        kwargs = {"eb": 1e-3, "mode": "rel", "lossless": "gle", **overrides}
        comp = CuSZi(**kwargs)
        blob, stats = comp.compress_detailed(field)
        print(f"{label:32s} CR={stats.ratio:6.2f} "
              f"bits/val={stats.bit_rate:5.2f} "
              f"nonzero codes={stats.nonzero_code_fraction * 100:5.1f}%")

    print("\nNote the window-confinement row: the accuracy loss is the "
          "price of chunk-parallel GPU execution (paper §V-A tradeoff).")


if __name__ == "__main__":
    main()
