#!/usr/bin/env python
"""Distributed lossy data transmission between supercomputers.

The paper's §VII-C.5 case study: a cosmology (Nyx) dataset must move from
ALCF Theta-GPU to Purdue Anvil over a ~1 GB/s Globus link. Compressing
with a GPU compressor on the source, shipping the archive, and
decompressing on the destination turns hours of raw transfer into seconds
— and the compressor with the best *ratio* wins even if its kernels are
slower, which is cuSZ-i's trade.

Run:  python examples/distributed_transfer.py
"""

from repro import psnr
from repro.datasets import get_dataset, load_field
from repro.registry import get_compressor
from repro.transfer import THETA_TO_ANVIL, simulate_transfer


def main() -> None:
    info = get_dataset("nyx")
    field = load_field("nyx", "baryon_density")
    model_elements = int(info.paper_total_gb * 1e9 / 4)
    raw_seconds = THETA_TO_ANVIL.wire_time(model_elements * 4)
    print(f"dataset: nyx, {info.paper_total_gb} GB on disk")
    print(f"raw transfer over {THETA_TO_ANVIL.name}: "
          f"{raw_seconds:.0f} s\n")

    print(f"{'codec':>7} {'PSNR':>7} {'ratio':>7} {'compress':>9} "
          f"{'wire':>7} {'decomp':>8} {'total':>7}")
    for codec in ("cuszi", "cusz", "cuszp", "cuszx", "fzgpu"):
        comp = get_compressor(codec, eb=1e-3, mode="rel", lossless="gle")
        blob = comp.compress(field)
        quality = psnr(field, comp.decompress(blob))
        ratio = field.nbytes / len(blob)
        cb = int(model_elements * 4 / ratio)
        plan = simulate_transfer(codec, model_elements, cb,
                                 lossless="gle")
        print(f"{codec:>7} {quality:>6.1f}dB {ratio:>6.1f}x "
              f"{plan.compress_s:>8.3f}s {plan.wire_s:>6.2f}s "
              f"{plan.decompress_s:>7.3f}s {plan.total_s:>6.2f}s")

    print("\n(the GPU times come from the calibrated performance model; "
          "ratios are measured on the synthetic Nyx analogue)")


if __name__ == "__main__":
    main()
