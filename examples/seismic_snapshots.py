#!/usr/bin/env python
"""In-situ archiving of a seismic (RTM) snapshot series.

Reverse-time-migration runs dump a wavefield snapshot every ~100 timesteps
(the paper's Table II RTM workload). This example compresses a series of
snapshots in situ with cuSZ-i and with cuSZ, showing how the achievable
ratio evolves as the wavefront fills the volume, and the cumulative
storage saved over the run — the scenario of paper Fig. 6.

Run:  python examples/seismic_snapshots.py
"""

from repro import psnr
from repro.datasets.registry import rtm_steps
from repro.datasets.synthetic import rtm_field
from repro.registry import get_compressor


def main() -> None:
    steps = rtm_steps(n=8)
    cuszi = get_compressor("cuszi", eb=1e-3, mode="rel", lossless="gle")
    cusz = get_compressor("cusz", eb=1e-3, mode="rel", lossless="gle")

    total_raw = 0
    total_i = 0
    total_z = 0
    print(f"{'step':>6} {'quiet%':>7} {'cuSZ-i CR':>10} {'cuSZ CR':>8} "
          f"{'cuSZ-i PSNR':>12}")
    for step in steps:
        snap = rtm_field(step=step)
        blob_i = cuszi.compress(snap)
        blob_z = cusz.compress(snap)
        recon = cuszi.decompress(blob_i)
        quiet = float((snap == 0).mean()) * 100
        print(f"{step:>6} {quiet:>6.1f}% "
              f"{snap.nbytes / len(blob_i):>10.1f} "
              f"{snap.nbytes / len(blob_z):>8.1f} "
              f"{psnr(snap, recon):>10.2f} dB")
        total_raw += snap.nbytes
        total_i += len(blob_i)
        total_z += len(blob_z)

    print(f"\nseries totals: raw {total_raw / 1e6:.0f} MB -> "
          f"cuSZ-i {total_i / 1e6:.1f} MB ({total_raw / total_i:.1f}x), "
          f"cuSZ {total_z / 1e6:.1f} MB ({total_raw / total_z:.1f}x)")


if __name__ == "__main__":
    main()
