#!/usr/bin/env python
"""Rate-distortion study: pick the right compressor for a quality target.

Sweeps error bounds (rates for cuZFP) on a turbulence field and prints the
(bit rate, PSNR) frontier per compressor — the workflow behind paper
Fig. 7a. Use it to answer: "I need >= 65 dB; who gets me there cheapest,
and what does the de-redundancy pass buy?"

Run:  python examples/rate_distortion_study.py
"""

from repro import bit_rate, psnr
from repro.datasets import load_field
from repro.registry import get_compressor

TARGET_DB = 65.0


def sweep(codec: str, field, lossless: str) -> list[tuple[float, float]]:
    points = []
    if codec == "cuzfp":
        for rate in (1.0, 2.0, 4.0, 8.0):
            c = get_compressor(codec, rate=rate, lossless=lossless)
            blob = c.compress(field)
            points.append((bit_rate(field.size, len(blob)),
                           psnr(field, c.decompress(blob))))
    else:
        for eb in (1e-2, 3e-3, 1e-3, 3e-4, 1e-4):
            c = get_compressor(codec, eb=eb, mode="rel",
                               lossless=lossless)
            blob = c.compress(field)
            points.append((bit_rate(field.size, len(blob)),
                           psnr(field, c.decompress(blob))))
    return points


def rate_at_target(points: list[tuple[float, float]]) -> float | None:
    """Smallest bit rate on the frontier reaching TARGET_DB."""
    ok = [br for br, p in points if p >= TARGET_DB]
    return min(ok) if ok else None


def main() -> None:
    field = load_field("jhtdb", "u")
    print(f"field: jhtdb/u {field.shape}; target quality "
          f">= {TARGET_DB} dB\n")
    print(f"{'codec':>7} {'lossless':>9} {'frontier (bits/val @ dB)':>46} "
          f"{'cost@target':>12}")
    for codec in ("cuszi", "cusz", "cuszp", "fzgpu", "cuzfp"):
        for lossless in ("none", "gle"):
            pts = sweep(codec, field, lossless)
            pretty = " ".join(f"{br:.2f}@{p:.0f}" for br, p in pts)
            need = rate_at_target(pts)
            cost = f"{need:.2f} b/val" if need else "unreached"
            print(f"{codec:>7} {lossless:>9} {pretty:>46} {cost:>12}")
    print("\nLower bits/value at the target wins; compare the gle rows to "
          "see the de-redundancy synergy (paper Fig. 7b).")


if __name__ == "__main__":
    main()
