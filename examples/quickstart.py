#!/usr/bin/env python
"""Quickstart: compress a scientific field with cuSZ-i and verify the bound.

Generates a Miranda-style hydrodynamics density field, compresses it with
the full cuSZ-i pipeline (G-Interp + Huffman + GLE de-redundancy) at a
value-range-relative error bound of 1e-3, and checks the paper's core
contract: every reconstructed sample is within the bound.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compress, decompress, psnr
from repro.datasets import load_field


def main() -> None:
    field = load_field("miranda", "density")
    print(f"field: miranda/density {field.shape} {field.dtype} "
          f"({field.nbytes / 1e6:.1f} MB)")

    rel_eb = 1e-3
    blob = compress(field, codec="cuszi", eb=rel_eb, mode="rel",
                    lossless="gle")
    ratio = field.nbytes / len(blob)
    print(f"compressed: {len(blob) / 1e6:.2f} MB  "
          f"(ratio {ratio:.1f}x, {8 * len(blob) / field.size:.2f} "
          f"bits/value)")

    recon = decompress(blob)
    value_range = float(field.max() - field.min())
    max_err = np.abs(recon - field).max()
    print(f"max abs error: {max_err:.3e}  "
          f"(bound {rel_eb * value_range:.3e})")
    print(f"PSNR: {psnr(field, recon):.2f} dB")
    assert max_err <= rel_eb * value_range * 1.000001
    print("error bound holds on every sample.")


if __name__ == "__main__":
    main()
