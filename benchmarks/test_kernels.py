"""Kernel microbenchmarks: per-stage throughput of the NumPy kernels.

These time the actual Python implementation (not the GPU model) so the
vectorization quality of each stage is visible: MB/s of uncompressed input
processed per stage.
"""

import numpy as np
import pytest

from repro.baselines.lorenzo import (lorenzo_delta, lorenzo_prequantize,
                                     lorenzo_reconstruct)
from repro.common.quantizer import LinearQuantizer
from repro.core.ginterp import InterpSpec, interp_compress, interp_decompress
from repro.huffman import huffman_decode, huffman_encode
from repro.lossless import gle_compress, gle_decompress
from repro.registry import get_compressor


@pytest.fixture(scope="module")
def codes(bench_field):
    eb = 1e-3 * float(bench_field.max() - bench_field.min())
    spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33))
    return interp_compress(bench_field, spec, eb).codes


class TestPredictorKernels:
    def test_ginterp_predict(self, benchmark, bench_field):
        eb = 1e-3 * float(bench_field.max() - bench_field.min())
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33))
        benchmark(interp_compress, bench_field, spec, eb)

    def test_ginterp_reconstruct(self, benchmark, bench_field):
        eb = 1e-3 * float(bench_field.max() - bench_field.min())
        spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33))
        res = interp_compress(bench_field, spec, eb)
        benchmark(interp_decompress, bench_field.shape, spec, eb,
                  res.codes, res.outliers, res.anchors)

    def test_lorenzo_forward(self, benchmark, bench_field):
        eb = 1e-3 * float(bench_field.max() - bench_field.min())
        benchmark(lambda: lorenzo_delta(
            lorenzo_prequantize(bench_field, eb)))

    def test_lorenzo_scan(self, benchmark, bench_field):
        eb = 1e-3 * float(bench_field.max() - bench_field.min())
        delta = lorenzo_delta(lorenzo_prequantize(bench_field, eb))
        benchmark(lorenzo_reconstruct, delta, eb)


class TestEncodingKernels:
    def test_huffman_encode(self, benchmark, codes):
        benchmark(huffman_encode, codes, 1024)

    def test_huffman_decode(self, benchmark, codes):
        stream = huffman_encode(codes, 1024)
        benchmark(huffman_decode, stream)

    def test_gle_compress(self, benchmark, codes):
        payload = huffman_encode(codes, 1024).to_bytes()
        benchmark(gle_compress, payload)

    def test_gle_decompress(self, benchmark, codes):
        blob = gle_compress(huffman_encode(codes, 1024).to_bytes())
        benchmark(gle_decompress, blob)

    def test_quantizer(self, benchmark, bench_field):
        q = LinearQuantizer(512)
        flat = bench_field.astype(np.float64).ravel()
        preds = np.roll(flat, 1)
        benchmark(q.quantize, flat, preds, 1e-3)


@pytest.mark.parametrize("codec", ["cuszi", "cusz", "cuszp", "cuszx",
                                   "fzgpu"])
class TestEndToEnd:
    def test_compress(self, benchmark, bench_field, codec):
        c = get_compressor(codec, eb=1e-3, mode="rel", lossless="gle")
        blob = benchmark(c.compress, bench_field)
        mbps = bench_field.nbytes / 1e6 / benchmark.stats["mean"]
        benchmark.extra_info["input_MB_per_s"] = round(mbps, 1)
        benchmark.extra_info["ratio"] = round(
            bench_field.nbytes / len(blob), 2)

    def test_decompress(self, benchmark, bench_field, codec):
        c = get_compressor(codec, eb=1e-3, mode="rel", lossless="gle")
        blob = c.compress(bench_field)
        benchmark(c.decompress, blob)


class TestCuZFPEndToEnd:
    def test_compress(self, benchmark, bench_field):
        c = get_compressor("cuzfp", rate=4.0)
        benchmark(c.compress, bench_field)

    def test_decompress(self, benchmark, bench_field):
        c = get_compressor("cuzfp", rate=4.0)
        blob = c.compress(bench_field)
        benchmark(c.decompress, blob)
