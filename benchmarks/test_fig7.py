"""Regenerate Fig. 7a/7b (rate-distortion curves and the GLE shift)."""

import numpy as np

from conftest import run_once
from repro.experiments import fig7


def _auc_advantage(curves, ds, a, b, lossless="gle"):
    """PSNR advantage of codec a over b at their overlapping bit rates.

    When the curves do not overlap, whoever occupies the lower-bit-rate
    band wins outright (the other cannot even reach that regime).
    """
    pa = sorted(curves[(ds, a, lossless)])
    pb = sorted(curves[(ds, b, lossless)])
    lo = max(pa[0][0], pb[0][0])
    hi = min(pa[-1][0], pb[-1][0])
    if hi <= lo:
        return 1e9 if pa[0][0] < pb[0][0] else -1e9
    grid = np.linspace(lo, hi, 16)
    fa = np.interp(grid, [p[0] for p in pa], [p[1] for p in pa])
    fb = np.interp(grid, [p[0] for p in pb], [p[1] for p in pb])
    return float((fa - fb).mean())


def test_fig7(benchmark, scale):
    result = run_once(benchmark, fig7.run, scale=scale)
    print()
    print(result.format())
    datasets = sorted({k[0] for k in result.curves})
    # with the de-redundancy pass, cuSZ-i's rate-distortion beats every
    # other GPU compressor on most datasets
    for other in ("cusz", "cuszp", "cuszx", "fzgpu"):
        wins = sum(_auc_advantage(result.curves, ds, "cuszi", other) > 0
                   for ds in datasets)
        assert wins >= len(datasets) - 1, other
    # Fig. 7b: the shift is leftward (never negative beyond noise)
    shifts = [s for *_ , s in result.shift_rows()]
    assert min(shifts) > -0.02
