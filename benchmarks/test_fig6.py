"""Regenerate Fig. 6 (PSNR across RTM snapshots, interp vs Lorenzo)."""

from conftest import run_once
from repro.experiments import fig6


def test_fig6(benchmark, scale):
    result = run_once(benchmark, fig6.run, scale=scale)
    print()
    print(result.format())
    for eb in (1e-3, 1e-4):
        gi = dict(result.series[(eb, "cuszi")])
        lo = dict(result.series[(eb, "cusz")])
        gains = [gi[s] - lo[s] for s in gi]
        # paper: constant PSNR advantage over GPU-Lorenzo on every snapshot
        assert min(gains) > 0
        assert max(gains) < 15  # of the same order as the paper's 2.5-10 dB
