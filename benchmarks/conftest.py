"""Benchmark fixtures.

Every paper artifact (table/figure) has one benchmark module that
regenerates it at ``small`` scale and prints the rendered artifact, so
``pytest benchmarks/ --benchmark-only`` both times the harness and leaves
the reproduced numbers in the log. ``REPRO_BENCH_SCALE=full`` switches to
the paper-complete workloads.
"""

import os

import numpy as np
import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def bench_field():
    """A representative mid-size field for kernel microbenchmarks."""
    from repro.datasets import load_field
    return load_field("jhtdb", "u", shape=(96, 96, 96))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
