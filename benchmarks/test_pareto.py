"""Regenerate the throughput-ratio Pareto analysis (§VII-C.4 claim)."""

from conftest import run_once
from repro.experiments import pareto


def test_pareto(benchmark, scale):
    result = run_once(benchmark, pareto.run, scale=scale)
    print()
    print(result.format())
    for key, front in result.fronts.items():
        # cuSZ-i must sit on the front (best-ratio corner)
        assert "cuszi" in front, key
