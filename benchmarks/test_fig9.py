"""Regenerate Fig. 9 (modelled GPU throughputs on A100/A40)."""

from conftest import run_once
from repro.experiments import fig9


def test_fig9(benchmark, scale):
    result = run_once(benchmark, fig9.run, scale=scale)
    print()
    print(result.format())
    for eb in (1e-2, 1e-3):
        # §VII-C.4 ratio checks on the A100
        comp_i = result.bars[("a100", eb, "cuszi", "none", "compress")]
        comp_z = result.bars[("a100", eb, "cusz", "none", "compress")]
        assert 0.4 <= comp_i / comp_z <= 0.75
        dec_i = result.bars[("a100", eb, "cuszi", "none", "decompress")]
        dec_z = result.bars[("a100", eb, "cusz", "none", "decompress")]
        assert 0.7 <= dec_i / dec_z <= 0.95
        # GLE overhead negligible
        gle = result.bars[("a100", eb, "cuszi", "gle", "compress")]
        assert gle >= comp_i * 0.9
        # closer on the A40
        a40_i = result.bars[("a40", eb, "cuszi", "none", "compress")]
        a40_z = result.bars[("a40", eb, "cusz", "none", "compress")]
        assert a40_i / a40_z > comp_i / comp_z
