"""Regenerate Fig. 5 (nonzero quant-code counts per predictor)."""

from conftest import run_once
from repro.experiments import fig5


def test_fig5(benchmark, scale):
    result = run_once(benchmark, fig5.run, scale=scale)
    print()
    print(result.format())
    stats = {(eb, pred): s for eb, pred, s in result.rows}
    for eb in (1e-2, 1e-3):
        ginterp = stats[(eb, "ginterp")]["nonzero"]
        lorenzo = stats[(eb, "lorenzo")]["nonzero"]
        sz3 = stats[(eb, "sz3")]["nonzero"]
        # paper: G-Interp far below Lorenzo, close to CPU SZ3
        assert ginterp < lorenzo / 3
        assert ginterp < 3 * max(sz3, 1)
