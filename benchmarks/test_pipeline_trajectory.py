"""Opt-in machine-readable perf trajectory: ``BENCH_pipeline.json``.

Set ``REPRO_BENCH_EMIT=1`` (or ``REPRO_BENCH_EMIT=/path/to/file.json``)
to time compress/decompress on one fixed seeded Nyx field per codec and
write the results as JSON. The file is a stable, diffable record —
future PRs rerun this and compare against the committed/archived numbers
to catch wall-time or ratio regressions without parsing pytest logs.

Beyond the per-codec serial times, a ``runtime`` section times the same
field through the slab runtime serially and with a ``workers >= 2``
process pool (:mod:`repro.runtime`), recording the parallel speedup the
trajectory should preserve, and a ``ginterp`` section (schema 3) times a
repeated-compress loop through the compiled pass-plan cache
(:mod:`repro.core.ginterp.plans`) against the uncompiled reference
traversal — per-pass compile vs execute wall time, the warm-cache
speedup, and the plan-cache hit counters (including the decompress
replay and an eb-retune, which must reuse the plan). A ``lossless``
section (schema 4) times the segment-aware orchestrator on the cuSZ-i
container against the whole-container GLE pass it replaces — cold
(sampling) and warm (plan-cache) encode, decode, the per-segment
backend plan, and the bytes saved.

Schema 7 adds a ``huffman`` section: the batch-parallel table-driven
Huffman codec (:mod:`repro.huffman.codec`) timed on this field's real
quant-code stream — encode/decode wall time and MB/s for the default
``lut`` engine, the retained ``loop`` engine for the speedup ratio, the
cold multi-symbol LUT build, chunk count and probe width, and the share
of a full pipeline decompress spent in the Huffman stage (CI asserts it
stays under half). The ``ginterp`` section gains a ``tune`` record —
the autotune stage's wall time, its share of a warm compress, and the
content-fingerprint cache counters — so retune reuse is part of the
trajectory.

Schema 8 mirrors the decode work on the encode side. The ``huffman``
section gains ``loop_encode_s`` / ``encode_engine_speedup`` (the
chunk-vectorized ``vector`` emitter against the retained byte-plane
``loop`` engine, byte-identical streams) and a ``codebook_cache`` record
(the quantized-fingerprint codebook cache of
:mod:`repro.huffman.tree`); ``lut_build_s`` is timed cold behind a
prewarm drain so neither encode nor decode MB/s bills the LUT build.
The ``ginterp`` section gains a ``fused_quantize`` record — the share
of a warm compress spent in the fused predict–quantize emission
(``ginterp.pq`` spans). A new ``walls`` section records best-of-N
end-to-end compress/decompress walls on the 64^3 and 128^3 fields and
their ratios — CI gates compress staying within 1.5x of decompress.
Sections that cannot run on the current host (the serial-vs-parallel
``runtime`` and ``transport`` comparisons need >= 2 usable CPUs) are
emitted as ``{"skipped_reason": ...}`` instead of noise numbers; the
sentinel skips sections whose gate metrics are absent.

Schema 9 adds an ``analytics`` section: the run ledger this bench emits
is replayed through a fresh :class:`repro.telemetry.analytics
.AnalyticsEngine` — the per-run append-time scoring cost
(``score_mean_us``, asserted under 1% of the warm 64^3 compress wall
and gated by the sentinel), one full report build (``analyze_us``),
and the cohort/baseline/anomaly counts the engine derived from the
bench's own runs.

Schema 6 adds a ``transport`` section: serial vs pooled wall times for
both directions on a 128^3 field (big enough to clear the shm floors),
the shm-vs-pickled byte accounting from
:func:`repro.runtime.pool.transport_stats`, and the active transport's
size floors — the sentinel gates on pooled decompress staying
competitive with serial. ``runtime.cpu_count`` now reports *usable*
cores (``sched_getaffinity``), with the installed count kept as
``cpu_count_logical``.

Schema 5 adds the observability layer: a ``thresholds`` object declaring
each section's regression tolerance (read by
:mod:`repro.telemetry.sentinel` — the *committed baseline* owns its own
noise budget), a ``caches`` section snapshotting the unified cache
registry (:mod:`repro.telemetry.caches`) after the workload, and a
sibling ``BENCH_ledger.jsonl`` run ledger dumped from the always-on
flight recorder (:mod:`repro.telemetry.recorder`) — CI uploads it as an
artifact and gates on ``repro doctor --check`` over it. One compress is
run with the sampled quality auditor enabled so the ledger always
carries an error-bound histogram. See ``docs/OBSERVABILITY.md``,
``docs/PERFORMANCE.md`` and ``benchmarks/compare_trajectory.py``.
"""

import json
import os
import time

import numpy as np
import pytest

EMIT = os.environ.get("REPRO_BENCH_EMIT", "")

#: codecs timed for the trajectory; the cuSZ-i pipeline plus the fast
#: Lorenzo baselines most likely to regress from shared-substrate edits
CODECS = ("cuszi", "cusz", "cuszp", "fzgpu")
FIELD = ("nyx", "baryon_density", (64, 64, 64))
EB = 1e-3
#: planes per slab for the runtime section: 64 planes -> 8 slabs
SLAB_PLANES = 8


def _bench_parallel_sections(data, shape, usable_cpus):
    """The serial-vs-parallel ``runtime`` and ``transport`` sections.

    Only run on hosts with >= 2 usable CPUs — on a single schedulable
    core the "parallel" walls measure contention, not the runtime.
    """
    from repro.datasets import load_field
    from repro.runtime import (parallel_compress_slabs,
                               parallel_decompress_slabs, resolve_workers)
    from repro.streaming import compress_slabs, decompress_slabs

    dataset, field, _ = FIELD
    slab_kwargs = dict(codec="cuszi", eb=EB, mode="rel", lossless="none")
    workers = min(4, max(2, resolve_workers("auto")))
    # warm the pool so fork/startup cost is not billed to the timed run
    parallel_compress_slabs(data[:2 * SLAB_PLANES], SLAB_PLANES,
                            workers=workers, **slab_kwargs)
    t0 = time.perf_counter()
    serial_stream = compress_slabs(data, SLAB_PLANES, **slab_kwargs)
    t1 = time.perf_counter()
    parallel_stream = parallel_compress_slabs(data, SLAB_PLANES,
                                              workers=workers,
                                              **slab_kwargs)
    t2 = time.perf_counter()
    assert parallel_stream == serial_stream, \
        "parallel slab runtime must be byte-identical to serial"
    recon = parallel_decompress_slabs(parallel_stream, workers=workers)
    t3 = time.perf_counter()
    assert recon.shape == data.shape
    t4 = time.perf_counter()
    decompress_slabs(serial_stream)
    t5 = time.perf_counter()
    serial_s = t1 - t0
    parallel_s = t2 - t1
    runtime = {
        "n_slabs": -(-shape[0] // SLAB_PLANES),
        "workers": workers,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "parallel_decompress_s": round(t3 - t2, 6),
        "serial_decompress_s": round(t5 - t4, 6),
        "speedup": round(serial_s / parallel_s, 4) if parallel_s else 0.0,
        "cpu_count": usable_cpus,
        "cpu_count_logical": os.cpu_count(),
    }

    # schema 6: the zero-copy shm transport on a field big enough to
    # clear the shm floors (128^3 f32 = 8 MiB). Serial vs pooled wall
    # times for both directions plus the byte accounting that proves
    # payloads moved through arenas rather than the pickle queue.
    from repro.runtime import pool as runtime_pool
    from repro.runtime import transport_kind
    tdata = load_field(dataset, field, shape=(128, 128, 128))
    tkind = transport_kind()
    runtime_pool.reset_transport_stats()
    # warm the daemon pool (fork + codec import cost is one-time)
    parallel_compress_slabs(tdata[:2 * SLAB_PLANES], SLAB_PLANES,
                            workers=workers, **slab_kwargs)
    t0 = time.perf_counter()
    t_serial_stream = compress_slabs(tdata, SLAB_PLANES, **slab_kwargs)
    t1 = time.perf_counter()
    t_par_stream = parallel_compress_slabs(tdata, SLAB_PLANES,
                                           workers=workers, **slab_kwargs)
    t2 = time.perf_counter()
    assert t_par_stream == t_serial_stream, \
        "shm transport must be byte-identical to serial"
    decompress_slabs(t_serial_stream)
    t3 = time.perf_counter()
    parallel_decompress_slabs(t_par_stream, workers=workers)
    t4 = time.perf_counter()
    tstats = runtime_pool.transport_stats()
    ser_c, par_c = t1 - t0, t2 - t1
    ser_d, par_d = t3 - t2, t4 - t3
    transport = {
        "kind": tkind,
        "field_shape": [128, 128, 128],
        "field_bytes": tdata.nbytes,
        "workers": workers,
        "serial_compress_s": round(ser_c, 6),
        "parallel_compress_s": round(par_c, 6),
        "compress_speedup": round(ser_c / par_c, 4) if par_c else 0.0,
        "serial_decompress_s": round(ser_d, 6),
        "parallel_decompress_s": round(par_d, 6),
        "decompress_speedup": round(ser_d / par_d, 4) if par_d else 0.0,
        "shm_bytes_moved": tstats["shm_bytes"],
        "pickled_bytes": tstats["pickled_bytes"],
        "copies_avoided": tstats["copies_avoided"],
        "min_encode_bytes": runtime_pool.SHM_MIN_ENCODE_BYTES
        if tkind == "shm" else runtime_pool.PARALLEL_MIN_ENCODE_BYTES,
        "min_decode_bytes": runtime_pool.SHM_MIN_DECODE_BYTES
        if tkind == "shm" else runtime_pool.PARALLEL_MIN_DECODE_BYTES,
    }
    return runtime, transport


@pytest.mark.skipif(not EMIT, reason="set REPRO_BENCH_EMIT=1 (or a path) "
                                     "to emit BENCH_pipeline.json")
def test_emit_pipeline_trajectory():
    from repro.datasets import load_field
    from repro.registry import get_compressor

    dataset, field, shape = FIELD
    data = load_field(dataset, field, shape=shape)
    results = {}
    for codec in CODECS:
        comp = get_compressor(codec, eb=EB, mode="rel", lossless="none")
        t0 = time.perf_counter()
        blob = comp.compress(data)
        t1 = time.perf_counter()
        recon = comp.decompress(blob)
        t2 = time.perf_counter()
        assert recon.shape == data.shape
        results[codec] = {
            "compress_s": round(t1 - t0, 6),
            "decompress_s": round(t2 - t1, 6),
            "ratio": round(data.nbytes / len(blob), 4),
            "compressed_bytes": len(blob),
        }
    # usable cores, not installed cores: cgroup/affinity-limited runners
    # (CI containers) otherwise report e.g. cpu_count=64 while only one
    # core is schedulable, which misrepresents every speedup number
    try:
        usable_cpus = len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        usable_cpus = os.cpu_count() or 1

    if usable_cpus < 2:
        # a serial-vs-parallel comparison on one schedulable core times
        # scheduler contention, not the runtime — emit the reason instead
        # of numbers (the sentinel skips sections without gate metrics)
        skip = {"skipped_reason":
                f"needs >= 2 usable CPUs, have {usable_cpus}",
                "cpu_count": usable_cpus,
                "cpu_count_logical": os.cpu_count()}
        runtime = dict(skip)
        transport = dict(skip)
    else:
        runtime, transport = _bench_parallel_sections(data, shape,
                                                      usable_cpus)

    # compiled pass-plan engine: repeated-compress loop, warm plan cache,
    # against the uncompiled reference traversal on the same field
    from repro import telemetry
    from repro.core.ginterp import (InterpSpec, clear_plan_cache,
                                    interp_compress, interp_decompress,
                                    get_plan, plan_cache_stats)
    spec = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33)).resolved(3)
    abs_eb = EB * float(data.max() - data.min())
    clear_plan_cache()
    plan = get_plan(shape, spec)            # the one cold compile
    reps, rounds = 5, 3

    def _best(fn):
        # best-of-rounds mean: robust to scheduler noise on shared runners
        fn()                                                # warm
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            best = min(best, (time.perf_counter() - t0) / reps)
        return best

    ref_s = _best(lambda: interp_compress(data, spec, abs_eb,
                                          compiled=False))
    cmp_s = _best(lambda: interp_compress(data, spec, abs_eb))
    # per-pass execute time from one traced compiled run
    with telemetry.recording() as rec:
        res = interp_compress(data, spec, abs_eb)
    exec_by_pass = {}
    for sp in rec.spans:
        if sp.name == "ginterp.pass":
            k = (sp.attrs.get("level"), sp.attrs.get("axis"))
            exec_by_pass[k] = exec_by_pass.get(k, 0.0) + sp.duration_s
    per_pass = [{
        "level": cp.desc.level,
        "axis": cp.desc.axis,
        "targets": cp.n_targets,
        "compile_s": round(cp.compile_s, 6),
        "execute_s": round(
            exec_by_pass.get((cp.desc.level, cp.desc.axis), 0.0), 6),
    } for cp in plan.passes]
    # the decompress replay and an eb-retune (different alpha, same
    # geometry) must both hit the cached plan
    interp_decompress(shape, spec, abs_eb, res.codes, res.outliers,
                      res.anchors)
    retune = InterpSpec(anchor_stride=8, window_shape=(9, 9, 33),
                        alpha=1.75).resolved(3)
    interp_compress(data, retune, abs_eb / 10)
    cache = plan_cache_stats()
    assert cache["misses"] == 1, "repeated traversals must share one plan"
    ginterp = {
        "plan_compile_s": round(plan.compile_s, 6),
        "plan_nbytes": plan.nbytes,
        "n_fused": plan.n_fused,
        "n_gather": plan.n_gather,
        "reps": reps,
        "rounds": rounds,
        "reference_compress_s": round(ref_s, 6),
        "compiled_compress_s": round(cmp_s, 6),
        "speedup": round(ref_s / cmp_s, 4) if cmp_s else 0.0,
        "per_pass": per_pass,
        "plan_cache": cache,
    }

    # segment-aware lossless orchestration vs the whole-container GLE
    # pass it replaces, on the cuSZ-i container for this same field
    from repro.lossless import (OrchestratorCodec, gle_compress,
                                gle_decompress)
    from repro.lossless.orchestrator import (choose_backend,
                                             orchestrate_compress,
                                             orchestrate_decompress,
                                             split_streams, stream_stats)
    blob = get_compressor("cuszi", eb=EB, mode="rel",
                          lossless="none").compress(data)
    container = bytes(blob[5 + blob[4]:])    # strip the RPW1 wrap frame
    orch = OrchestratorCodec()
    gle_blob = gle_compress(container)
    orch_blob = orch.compress_bytes(container)
    assert orch.decompress_bytes(orch_blob) == container, \
        "orchestrated blob must round-trip byte-identically"
    assert gle_decompress(gle_blob) == container

    def _best_us(fn, inner=50):
        return _best_inner(fn, inner) * 1e6

    def _best_inner(fn, inner):
        fn()                                                # warm
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            best = min(best, (time.perf_counter() - t0) / inner)
        return best

    gle_s = _best_us(lambda: gle_compress(container))
    cold_s = _best_us(lambda: orchestrate_compress(container))
    warm_s = _best_us(lambda: orch.compress_bytes(container))
    gle_dec_s = _best_us(lambda: gle_decompress(gle_blob))
    orch_dec_s = _best_us(lambda: orchestrate_decompress(orch_blob))
    segments = [{"name": name, "bytes": len(sv),
                 "backend": choose_backend(stream_stats(sv))}
                for name, sv in split_streams(container)]
    lossless = {
        "container_bytes": len(container),
        "gle_bytes": len(gle_blob),
        "orchestrated_bytes": len(orch_blob),
        "bytes_saved_vs_gle": len(gle_blob) - len(orch_blob),
        "gle_encode_us": round(gle_s, 1),
        "cold_encode_us": round(cold_s, 1),
        "warm_encode_us": round(warm_s, 1),
        "warm_speedup_vs_gle": round(gle_s / warm_s, 4) if warm_s else 0.0,
        "gle_decode_us": round(gle_dec_s, 1),
        "orch_decode_us": round(orch_dec_s, 1),
        "decode_speedup_vs_gle": round(gle_dec_s / orch_dec_s, 4)
        if orch_dec_s else 0.0,
        "segments": segments,
    }

    # schema 7/8: the batch-parallel table-driven Huffman codec on this
    # field's real quant-code stream (the traced ginterp compress above),
    # both encode engines, plus the stage share Huffman holds in a full
    # pipeline decompress
    from repro.core.ginterp.autotune import autotune_cache_stats
    from repro.huffman import (LUT_PROBE_BITS, clear_fingerprint_cache,
                               drain_lut_prewarm, fingerprint_cache_stats,
                               fingerprint_code_lengths, huffman_decode,
                               huffman_encode)
    from repro.huffman.canonical import (MAX_CODE_LEN, build_lut_tables,
                                         clear_codebook_caches)
    from repro.huffman.codec import DEFAULT_CHUNK
    from repro.huffman.histogram import histogram

    hcodes = np.ascontiguousarray(res.codes).ravel()
    alph = max(1024, int(hcodes.max()) + 1)
    hlengths = fingerprint_code_lengths(histogram(hcodes, alph),
                                        MAX_CODE_LEN)
    # cold LUT build, timed on its own: drain any encode-side prewarm
    # first so the build below is genuinely cold, and keep it out of the
    # encode/decode MB/s math entirely
    drain_lut_prewarm()
    clear_codebook_caches()
    t0 = time.perf_counter()
    build_lut_tables(hlengths)
    lut_build_s = time.perf_counter() - t0

    hstream = huffman_encode(hcodes, alph, DEFAULT_CHUNK)
    ref_syms = hcodes.astype(np.uint32)
    assert np.array_equal(huffman_decode(hstream, engine="lut"), ref_syms)
    assert np.array_equal(huffman_decode(hstream, engine="loop"), ref_syms)
    assert huffman_encode(hcodes, alph, DEFAULT_CHUNK,
                          engine="loop").to_bytes() == hstream.to_bytes(), \
        "encode engines must emit byte-identical streams"
    clear_fingerprint_cache()
    enc_s = _best_inner(lambda: huffman_encode(hcodes, alph,
                                               DEFAULT_CHUNK), 5)
    loop_enc_s = _best_inner(
        lambda: huffman_encode(hcodes, alph, DEFAULT_CHUNK,
                               engine="loop"), 3)
    codebook_cache = fingerprint_cache_stats()
    lut_s = _best_inner(lambda: huffman_decode(hstream, engine="lut"), 5)
    loop_s = _best_inner(lambda: huffman_decode(hstream, engine="loop"), 3)

    # stage shares inside the full pipeline, from one traced round trip:
    # the Huffman share of decompress (CI gates it under 0.5) and the
    # tune share of a warm compress (the content-fingerprint cache
    # should answer the retune, satellite of the autotune work)
    comp = get_compressor("cuszi", eb=EB, mode="rel")
    pblob = comp.compress(data)            # warm plan/tune caches
    comp.decompress(pblob)                 # warm table/LUT caches
    dec_total = dec_huff = float("inf")
    for _ in range(3):                     # best-of-3: scheduler noise
        with telemetry.recording() as hrec:
            comp.decompress(pblob)
        tot = sum(sp.duration_s for sp in hrec.spans
                  if sp.name == "decompress")
        if tot < dec_total:
            dec_total = tot
            dec_huff = sum(sp.duration_s for sp in hrec.spans
                           if sp.name == "huffman")
    with telemetry.recording() as crec:
        comp.compress(data)
    comp_total = sum(sp.duration_s for sp in crec.spans
                     if sp.name == "compress")
    tune_s = sum(sp.duration_s for sp in crec.spans if sp.name == "tune")

    sym_mb = hcodes.size * 4 / 1e6         # decoded uint32 symbol bytes
    huffman = {
        "n_symbols": int(hcodes.size),
        "alphabet": int(alph),
        "chunk_size": DEFAULT_CHUNK,
        "n_chunks": int(hstream.chunk_bits.size),
        "probe_bits": LUT_PROBE_BITS,
        "stream_bytes": int(hstream.nbytes),
        "lut_build_s": round(lut_build_s, 6),
        "encode_s": round(enc_s, 6),
        "loop_encode_s": round(loop_enc_s, 6),
        "encode_engine": "vector",
        "encode_engine_speedup": round(loop_enc_s / enc_s, 4)
        if enc_s else 0.0,
        "codebook_cache": codebook_cache,
        "decode_s": round(lut_s, 6),
        "loop_decode_s": round(loop_s, 6),
        "decode_speedup_vs_loop": round(loop_s / lut_s, 4)
        if lut_s else 0.0,
        "encode_mb_s": round(sym_mb / enc_s, 2) if enc_s else 0.0,
        "decode_mb_s": round(sym_mb / lut_s, 2) if lut_s else 0.0,
        "decompress_stage_share": round(dec_huff / dec_total, 4)
        if dec_total else 0.0,
    }
    ginterp["tune"] = {
        "tune_s": round(tune_s, 6),
        "compress_stage_share": round(tune_s / comp_total, 4)
        if comp_total else 0.0,
        "autotune_cache": autotune_cache_stats(),
    }
    # schema 8: share of a warm compress spent in the fused
    # predict-quantize emission (the ginterp.pq spans of the traced run)
    pq_s = sum(sp.duration_s for sp in crec.spans
               if sp.name == "ginterp.pq")
    ginterp["fused_quantize"] = {
        "pq_s": round(pq_s, 6),
        "compress_stage_share": round(pq_s / comp_total, 4)
        if comp_total else 0.0,
    }

    # schema 8: end-to-end wall symmetry — the compress-side overhaul
    # targets compress staying within 1.5x of decompress on both the
    # bench field and the 128^3 transport-scale field (best-of-3)
    def _walls(wdata):
        wcomp = get_compressor("cuszi", eb=EB, mode="rel")
        wblob = wcomp.compress(wdata)          # warm plan/tune caches
        wcomp.decompress(wblob)                # warm table/LUT caches
        c_s = d_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            wcomp.compress(wdata)
            c_s = min(c_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            wcomp.decompress(wblob)
            d_s = min(d_s, time.perf_counter() - t0)
        return c_s, d_s

    c64, d64 = _walls(data)
    c128, d128 = _walls(load_field(dataset, field, shape=(128, 128, 128)))
    walls = {
        "rounds": 3,
        "compress64_s": round(c64, 6),
        "decompress64_s": round(d64, 6),
        "ratio64": round(c64 / d64, 4) if d64 else 0.0,
        "compress128_s": round(c128, 6),
        "decompress128_s": round(d128, 6),
        "ratio128": round(c128 / d128, 4) if d128 else 0.0,
    }

    # one quality-audited run so the bench ledger always carries a
    # sampled error-bound histogram for ``repro doctor`` to inspect
    from repro.telemetry import caches, quality, recorder
    quality.enable(every=1, fraction=0.25, block=16, seed=0)
    try:
        get_compressor("cuszi", eb=EB, mode="rel").compress(data)
    finally:
        quality.disable()

    # schema 9: ledger analytics — replay every run this bench recorded
    # through a fresh engine, timing the append-time scoring path and
    # one full report build. The per-run scoring cost must stay under
    # 1% of a warm 64^3 compress wall: the engine rides the recorder
    # subscriber hook, so this is pure overhead on every traced run.
    from repro.telemetry import analytics as analytics_mod
    engine = analytics_mod.AnalyticsEngine()
    for rec in recorder.records():
        engine.observe(rec)
    t0 = time.perf_counter()
    report = engine.report()
    analyze_s = time.perf_counter() - t0
    over = engine.overhead()
    score_share = (over["score_mean_us"] * 1e-6) / c64 if c64 else 0.0
    assert score_share < 0.01, (
        f"analytics scoring costs {over['score_mean_us']:.1f}us/run, "
        f"{score_share:.2%} of a {c64 * 1e3:.1f}ms compress64 wall")
    analytics = {
        "n_records": report["n_records"],
        "n_cohorts": report["n_cohorts"],
        "baseline_metrics": sum(len(c["baselines"])
                                for c in report["cohorts"].values()),
        "anomalous_runs": report["verdict"]["anomalous_runs"],
        "change_points": len(report["change_points"]),
        "score_mean_us": round(over["score_mean_us"], 3),
        "analyze_us": round(analyze_s * 1e6, 1),
        "score_share_of_compress64": round(score_share, 6),
    }

    doc = {
        "schema": 9,
        "field": {"dataset": dataset, "name": field,
                  "shape": list(shape)},
        "eb": EB,
        "mode": "rel",
        # per-section regression tolerance, read by the sentinel from
        # the *committed* copy of this file (the baseline owns its gate)
        # analytics gates on microsecond-scale scoring cost; 1.0 (100%)
        # absorbs timer noise at that magnitude while still catching a
        # scoring path that grows by integer factors
        "thresholds": {"ginterp": 0.25, "lossless": 0.25,
                       "runtime": 0.25, "transport": 0.25,
                       "huffman": 0.25, "walls": 0.25,
                       "analytics": 1.0},
        "results": results,
        "runtime": runtime,
        "transport": transport,
        "ginterp": ginterp,
        "lossless": lossless,
        "huffman": huffman,
        "walls": walls,
        "analytics": analytics,
        "caches": caches.snapshot(),
    }
    path = EMIT if EMIT.endswith(".json") else "BENCH_pipeline.json"
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    ledger_path = os.path.join(os.path.dirname(path) or ".",
                               "BENCH_ledger.jsonl")
    recorder.write_ledger(ledger_path)
    print(f"\nwrote perf trajectory for {len(results)} codecs -> {path}")
    print(f"wrote {len(recorder.records())} run record(s) -> {ledger_path}")
