"""Opt-in machine-readable perf trajectory: ``BENCH_pipeline.json``.

Set ``REPRO_BENCH_EMIT=1`` (or ``REPRO_BENCH_EMIT=/path/to/file.json``)
to time compress/decompress on one fixed seeded Nyx field per codec and
write the results as JSON. The file is a stable, diffable record —
future PRs rerun this and compare against the committed/archived numbers
to catch wall-time or ratio regressions without parsing pytest logs.
"""

import json
import os
import time

import pytest

EMIT = os.environ.get("REPRO_BENCH_EMIT", "")

#: codecs timed for the trajectory; the cuSZ-i pipeline plus the fast
#: Lorenzo baselines most likely to regress from shared-substrate edits
CODECS = ("cuszi", "cusz", "cuszp", "fzgpu")
FIELD = ("nyx", "baryon_density", (64, 64, 64))
EB = 1e-3


@pytest.mark.skipif(not EMIT, reason="set REPRO_BENCH_EMIT=1 (or a path) "
                                     "to emit BENCH_pipeline.json")
def test_emit_pipeline_trajectory():
    from repro.datasets import load_field
    from repro.registry import get_compressor

    dataset, field, shape = FIELD
    data = load_field(dataset, field, shape=shape)
    results = {}
    for codec in CODECS:
        comp = get_compressor(codec, eb=EB, mode="rel", lossless="none")
        t0 = time.perf_counter()
        blob = comp.compress(data)
        t1 = time.perf_counter()
        recon = comp.decompress(blob)
        t2 = time.perf_counter()
        assert recon.shape == data.shape
        results[codec] = {
            "compress_s": round(t1 - t0, 6),
            "decompress_s": round(t2 - t1, 6),
            "ratio": round(data.nbytes / len(blob), 4),
            "compressed_bytes": len(blob),
        }
    doc = {
        "schema": 1,
        "field": {"dataset": dataset, "name": field,
                  "shape": list(shape)},
        "eb": EB,
        "mode": "rel",
        "results": results,
    }
    path = EMIT if EMIT.endswith(".json") else "BENCH_pipeline.json"
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote perf trajectory for {len(results)} codecs -> {path}")
