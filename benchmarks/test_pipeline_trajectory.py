"""Opt-in machine-readable perf trajectory: ``BENCH_pipeline.json``.

Set ``REPRO_BENCH_EMIT=1`` (or ``REPRO_BENCH_EMIT=/path/to/file.json``)
to time compress/decompress on one fixed seeded Nyx field per codec and
write the results as JSON. The file is a stable, diffable record —
future PRs rerun this and compare against the committed/archived numbers
to catch wall-time or ratio regressions without parsing pytest logs.

Beyond the per-codec serial times, a ``runtime`` section times the same
field through the slab runtime serially and with a ``workers >= 2``
process pool (:mod:`repro.runtime`), recording the parallel speedup the
trajectory should preserve. See ``docs/PERFORMANCE.md``.
"""

import json
import os
import time

import pytest

EMIT = os.environ.get("REPRO_BENCH_EMIT", "")

#: codecs timed for the trajectory; the cuSZ-i pipeline plus the fast
#: Lorenzo baselines most likely to regress from shared-substrate edits
CODECS = ("cuszi", "cusz", "cuszp", "fzgpu")
FIELD = ("nyx", "baryon_density", (64, 64, 64))
EB = 1e-3
#: planes per slab for the runtime section: 64 planes -> 8 slabs
SLAB_PLANES = 8


@pytest.mark.skipif(not EMIT, reason="set REPRO_BENCH_EMIT=1 (or a path) "
                                     "to emit BENCH_pipeline.json")
def test_emit_pipeline_trajectory():
    from repro.datasets import load_field
    from repro.registry import get_compressor

    dataset, field, shape = FIELD
    data = load_field(dataset, field, shape=shape)
    results = {}
    for codec in CODECS:
        comp = get_compressor(codec, eb=EB, mode="rel", lossless="none")
        t0 = time.perf_counter()
        blob = comp.compress(data)
        t1 = time.perf_counter()
        recon = comp.decompress(blob)
        t2 = time.perf_counter()
        assert recon.shape == data.shape
        results[codec] = {
            "compress_s": round(t1 - t0, 6),
            "decompress_s": round(t2 - t1, 6),
            "ratio": round(data.nbytes / len(blob), 4),
            "compressed_bytes": len(blob),
        }
    # serial vs parallel slab runtime on the same field (>= 8 slabs);
    # the archives must be byte-identical, only the wall time may differ
    from repro.runtime import (parallel_compress_slabs,
                               parallel_decompress_slabs, resolve_workers)
    from repro.streaming import compress_slabs
    slab_kwargs = dict(codec="cuszi", eb=EB, mode="rel", lossless="none")
    workers = min(4, max(2, resolve_workers("auto")))
    # warm the pool so fork/startup cost is not billed to the timed run
    parallel_compress_slabs(data[:2 * SLAB_PLANES], SLAB_PLANES,
                            workers=workers, **slab_kwargs)
    t0 = time.perf_counter()
    serial_stream = compress_slabs(data, SLAB_PLANES, **slab_kwargs)
    t1 = time.perf_counter()
    parallel_stream = parallel_compress_slabs(data, SLAB_PLANES,
                                              workers=workers,
                                              **slab_kwargs)
    t2 = time.perf_counter()
    assert parallel_stream == serial_stream, \
        "parallel slab runtime must be byte-identical to serial"
    recon = parallel_decompress_slabs(parallel_stream, workers=workers)
    t3 = time.perf_counter()
    assert recon.shape == data.shape
    serial_s = t1 - t0
    parallel_s = t2 - t1
    runtime = {
        "n_slabs": -(-shape[0] // SLAB_PLANES),
        "workers": workers,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "parallel_decompress_s": round(t3 - t2, 6),
        "speedup": round(serial_s / parallel_s, 4) if parallel_s else 0.0,
        "cpu_count": os.cpu_count(),
    }

    doc = {
        "schema": 2,
        "field": {"dataset": dataset, "name": field,
                  "shape": list(shape)},
        "eb": EB,
        "mode": "rel",
        "results": results,
        "runtime": runtime,
    }
    path = EMIT if EMIT.endswith(".json") else "BENCH_pipeline.json"
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote perf trajectory for {len(results)} codecs -> {path}")
