"""Regenerate Table III (fixed-eb compression ratios, +/- de-redundancy)."""

from conftest import run_once
from repro.experiments import table3
from repro.experiments.harness import EB_GRID


def test_table3(benchmark, scale):
    result = run_once(benchmark, table3.run, scale=scale)
    print()
    print(result.format())
    # sanity: the paper's headline — with the de-redundancy pass, cuSZ-i
    # has the best ratio in (nearly) all cells
    datasets = sorted({k[0] for k in result.cells})
    wins = sum(result.advantage(ds, eb, "gle") > 0
               for ds in datasets for eb in EB_GRID)
    assert wins >= len(datasets) * len(EB_GRID) * 0.7
