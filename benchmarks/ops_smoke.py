"""CI smoke test for the live ops plane (``repro serve-ops``).

Boots the ops server as a real subprocess against a freshly generated
run ledger, then exercises the plane the way a monitoring stack would:

* ``/ready`` and ``/health`` must answer 200,
* ``/metrics`` must be well-formed Prometheus exposition text and carry
  the ``repro_build_info`` and ``repro_slo_*`` series,
* ``/runs`` must return the seeded records,
* ``/runs/stream`` must deliver at least one SSE ``run`` event.

Exits nonzero on any non-200, malformed exposition line, or missing
series — run by the ``ops-smoke`` CI job. Stdlib only.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import time
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
sys.path.insert(0, SRC)

#: one Prometheus sample line: metric name, optional labels, a value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})?'
    r" (NaN|[+-]?Inf|[+-]?[0-9.]+([eE][+-]?[0-9]+)?)$")


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _get(base: str, path: str) -> tuple[int, str]:
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.status, resp.read().decode()


def _wait_ready(base: str, deadline_s: float = 20.0) -> None:
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        try:
            status, _ = _get(base, "/ready")
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.2)
    raise SystemExit("ops server never became ready")


def _check_prometheus(body: str) -> int:
    """Validate exposition grammar; returns the number of sample lines."""
    samples = 0
    for lineno, line in enumerate(body.splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        if not _SAMPLE_RE.match(line):
            raise SystemExit(f"malformed Prometheus line {lineno}: "
                             f"{line!r}")
        samples += 1
    return samples


def _seed_ledger(path: str) -> int:
    """A small real workload's ledger: compress/decompress round trips."""
    import numpy as np

    from repro.registry import get_compressor
    from repro.telemetry import recorder

    rng = np.random.default_rng(0)
    data = rng.normal(size=(24, 24, 24)).astype(np.float32)
    for ax in range(data.ndim):
        data = (data + np.roll(data, 1, ax)) / 2
    comp = get_compressor("cuszi", eb=1e-3, mode="abs")
    for _ in range(3):
        comp.decompress(comp.compress(data))
    return recorder.write_ledger(path)


def _read_one_sse_event(base: str) -> dict:
    req = urllib.request.Request(base + "/runs/stream?replay=1")
    with urllib.request.urlopen(req, timeout=15) as resp:
        ctype = resp.headers["Content-Type"]
        if ctype != "text/event-stream":
            raise SystemExit(f"SSE content type was {ctype!r}")
        for raw in resp:
            line = raw.decode().rstrip("\n")
            if line.startswith("data: "):
                return json.loads(line[6:])
    raise SystemExit("SSE stream closed without an event")


def main() -> int:
    ledger = os.path.abspath("OPS_smoke_ledger.jsonl")
    n = _seed_ledger(ledger)
    print(f"seeded {n} run record(s) -> {ledger}")

    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve-ops",
         "--port", str(port), "--ledger", ledger,
         "--for-seconds", "120"], env=env)
    try:
        _wait_ready(base)

        status, body = _get(base, "/health")
        doc = json.loads(body)
        print(f"/health {status} {doc['status']} "
              f"({len(doc['checks'])} checks)")
        assert status == 200 and doc["status"] == "healthy", doc

        status, body = _get(base, "/metrics")
        assert status == 200
        samples = _check_prometheus(body)
        print(f"/metrics {status}: {samples} well-formed sample(s)")
        for needle in ("repro_build_info", "repro_slo_burn_rate",
                       "repro_slo_error_budget_remaining",
                       "repro_ops_uptime_seconds"):
            assert needle in body, f"missing series {needle}"

        status, body = _get(base, "/runs?n=10")
        doc = json.loads(body)
        print(f"/runs {status}: {doc['n_total']} record(s)")
        assert status == 200 and doc["n_total"] == n
        assert all(r.get("trace_id") for r in doc["records"])

        event = _read_one_sse_event(base)
        print(f"/runs/stream delivered one event: kind={event['kind']}")
        assert event["kind"] in ("compress", "decompress")

        print("ops smoke: OK")
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=20)
        try:
            os.remove(ledger)
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(main())
