"""Regenerate the cuSZ-i design-choice ablation table (DESIGN.md §5)."""

from conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark, scale):
    result = run_once(benchmark, ablations.run, scale=scale)
    print()
    print(result.format())
    datasets = sorted({k[0] for k in result.cells})
    for ds in datasets:
        full_cr, full_psnr = result.cells[(ds, 1e-2, "full")]
        # the de-redundancy pass is a pure win at loose bounds
        huff_cr, _ = result.cells[(ds, 1e-2, "huffman-only")]
        assert full_cr >= huff_cr
        # dropping the window (the GPU-parallelism constraint) can only
        # help prediction accuracy -> at least comparable ratio
        nowin_cr, _ = result.cells[(ds, 1e-2, "no-window")]
        assert nowin_cr >= full_cr * 0.85
