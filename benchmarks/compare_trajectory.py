"""Compare a fresh BENCH_pipeline.json against the committed baseline.

CI runs this after re-emitting the trajectory: it prints GitHub Actions
``::warning::`` annotations when the compiled-engine execute time (the
``ginterp`` section's repeated-compress loop) or the warm orchestrated
lossless encode (the ``lossless`` section, schema 4) regresses by more
than ``THRESHOLD`` against the baseline taken from ``git show``. It
*warns*, never fails — shared-runner wall times are too noisy to gate
merges on, but the annotation makes a slowdown visible on the PR.

Usage::

    python benchmarks/compare_trajectory.py \
        [--current BENCH_pipeline.json] [--base-ref HEAD] [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

#: relative regression of compiled ginterp execute time that triggers a
#: warning (the issue's acceptance bar: warn above 25%)
THRESHOLD = 0.25


def load_baseline(ref: str, path: str) -> dict | None:
    try:
        out = subprocess.run(["git", "show", f"{ref}:{path}"],
                             capture_output=True, text=True, check=True)
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(out.stdout)
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", default="BENCH_pipeline.json")
    ap.add_argument("--base-ref", default="HEAD")
    ap.add_argument("--threshold", type=float, default=THRESHOLD)
    args = ap.parse_args(argv)

    try:
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"::warning::cannot read {args.current}: {exc}")
        return 0
    baseline = load_baseline(args.base_ref, "BENCH_pipeline.json")
    if baseline is None:
        print(f"no committed BENCH_pipeline.json at {args.base_ref}; "
              f"nothing to compare")
        return 0

    cur_g = current.get("ginterp")
    base_g = baseline.get("ginterp")
    if not cur_g or not base_g:
        print("ginterp section missing on one side (schema < 3); skipping")
        return 0

    for key in ("compiled_compress_s", "reference_compress_s"):
        old, new = base_g.get(key), cur_g.get(key)
        if not old or not new:
            continue
        rel = (new - old) / old
        marker = ("::warning::" if key == "compiled_compress_s"
                  and rel > args.threshold else "")
        print(f"{marker}ginterp {key}: {old:.6f}s -> {new:.6f}s "
              f"({rel:+.1%}, warn threshold +{args.threshold:.0%})")

    old_sp, new_sp = base_g.get("speedup"), cur_g.get("speedup")
    if old_sp and new_sp:
        print(f"compiled-vs-reference speedup: {old_sp}x -> {new_sp}x")

    # lossless-stage trajectory (schema 4): warn when the warm
    # (plan-cached) orchestrated encode regresses past the threshold
    cur_l = current.get("lossless")
    base_l = baseline.get("lossless")
    if not cur_l or not base_l:
        print("lossless section missing on one side (schema < 4); "
              "skipping")
        return 0
    for key in ("warm_encode_us", "cold_encode_us", "orch_decode_us"):
        old, new = base_l.get(key), cur_l.get(key)
        if not old or not new:
            continue
        rel = (new - old) / old
        marker = ("::warning::" if key == "warm_encode_us"
                  and rel > args.threshold else "")
        print(f"{marker}lossless {key}: {old:.1f}us -> {new:.1f}us "
              f"({rel:+.1%}, warn threshold +{args.threshold:.0%})")
    old_b, new_b = base_l.get("orchestrated_bytes"), \
        cur_l.get("orchestrated_bytes")
    if old_b and new_b:
        print(f"orchestrated bytes: {old_b} -> {new_b} "
              f"({(new_b - old_b) / old_b:+.2%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
