"""Compare a fresh BENCH_pipeline.json against the committed baseline.

Thin CLI wrapper over :mod:`repro.telemetry.sentinel` — the one
implementation of the ">25% slower than baseline" check, shared with
``repro stats --check``. CI runs this after re-emitting the trajectory:
regressed gate metrics (per-section thresholds come from the *committed*
baseline's schema-5 ``thresholds`` object) print GitHub Actions
``::warning::`` annotations. It *warns*, never fails — shared-runner
wall times are too noisy to gate merges on; structural health gates via
``repro doctor --check`` on the bench run ledger instead.

Usage::

    PYTHONPATH=src python benchmarks/compare_trajectory.py \
        [--current BENCH_pipeline.json] [--base-ref HEAD] [--threshold X]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.telemetry import sentinel  # noqa: E402

#: kept as the documented default; ``--threshold`` overrides every
#: section at once, otherwise the baseline document decides
THRESHOLD = sentinel.DEFAULT_THRESHOLD


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", default="BENCH_pipeline.json")
    ap.add_argument("--base-ref", default="HEAD")
    ap.add_argument("--threshold", type=float, default=None,
                    help="override every section's threshold (default: "
                         "the baseline document's schema-5 thresholds)")
    args = ap.parse_args(argv)

    try:
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"::warning::cannot read {args.current}: {exc}")
        return 0
    baseline = sentinel.load_baseline(args.base_ref)
    if baseline is None:
        print(f"no committed BENCH_pipeline.json at {args.base_ref}; "
              f"nothing to compare")
        return 0

    overrides = ({s: args.threshold for s in sentinel.SECTIONS}
                 if args.threshold is not None else None)
    findings = sentinel.check(current, baseline, thresholds=overrides)
    if not findings:
        print("no comparable sections between current and baseline")
        return 0
    for line in sentinel.format_findings(findings, github=True):
        print(line)

    # context lines the annotations don't carry: speedups and sizes
    for section, key, label in (
            ("ginterp", "speedup", "compiled-vs-reference speedup"),
            ("runtime", "speedup", "parallel slab speedup"),
            ("transport", "compress_speedup",
             "shm pooled-compress speedup"),
            ("transport", "decompress_speedup",
             "shm pooled-decompress speedup"),
            ("lossless", "warm_speedup_vs_gle", "warm-vs-GLE speedup"),
            ("huffman", "decode_speedup_vs_loop",
             "huffman LUT-vs-loop decode speedup"),
            ("huffman", "decode_mb_s", "huffman LUT decode MB/s")):
        old = (baseline.get(section) or {}).get(key)
        new = (current.get(section) or {}).get(key)
        if old and new:
            print(f"{label}: {old}x -> {new}x")
    old_b = (baseline.get("lossless") or {}).get("orchestrated_bytes")
    new_b = (current.get("lossless") or {}).get("orchestrated_bytes")
    if old_b and new_b:
        print(f"orchestrated bytes: {old_b} -> {new_b} "
              f"({(new_b - old_b) / old_b:+.2%})")
    share = (current.get("huffman") or {}).get("decompress_stage_share")
    if share is not None:
        print(f"huffman share of pipeline decompress: {share:.1%}")

    n_reg = sum(1 for f in findings if f.regressed)
    print(f"{len(findings)} metric(s) compared, {n_reg} regressed "
          f"(warn-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
