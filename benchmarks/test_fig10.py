"""Regenerate Fig. 10 (distributed lossy transfer time vs PSNR)."""

import numpy as np

from conftest import run_once
from repro.experiments import fig10


def _time_at_psnr(points, target):
    """Interpolated transfer time of a codec's curve at a PSNR level."""
    pts = sorted((p, t) for p, t, _ in points)
    ps = [p for p, _ in pts]
    ts = [t for _, t in pts]
    if target < ps[0] or target > ps[-1]:
        return None
    return float(np.interp(target, ps, ts))


def test_fig10(benchmark, scale):
    result = run_once(benchmark, fig10.run, scale=scale)
    print()
    print(result.format())
    datasets = sorted({k[0] for k in result.curves})
    # paper: best-in-class time on the high-quality (>= ~70 dB) transfers
    wins = 0
    comparisons = 0
    for ds in datasets:
        t_i = _time_at_psnr(result.curves[(ds, "cuszi")], 70.0)
        if t_i is None:
            continue
        others = []
        for codec in ("cusz", "cuszp", "cuszx", "fzgpu", "cuzfp"):
            t = _time_at_psnr(result.curves[(ds, codec)], 70.0)
            if t is not None:
                others.append(t)
        if others:
            comparisons += 1
            wins += t_i <= min(others) * 1.05
    assert comparisons > 0
    assert wins >= comparisons - 1
