"""Regenerate Fig. 8 (decompression quality at aligned compression ratio)."""

from conftest import run_once
from repro.experiments import fig8


def test_fig8(benchmark, scale):
    result = run_once(benchmark, fig8.run, scale=scale)
    print()
    print(result.format())
    for snap in {k[0] for k in result.cells}:
        cells = {c: v for (s, c), v in result.cells.items() if s == snap}
        best_other = max(v["psnr"] for c, v in cells.items()
                         if c != "cuszi")
        # paper: cuSZ-i has the best quality at the aligned CR, by a wide
        # margin (8 dB on JHTDB, 40+ dB on S3D)
        assert cells["cuszi"]["psnr"] > best_other + 3
        assert cells["cuszi"]["ssim"] == max(v["ssim"]
                                             for v in cells.values())
